package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	prom "repro/internal/metrics"
	"repro/internal/reqid"
)

// slowRingSize bounds the slow-request ring on both tiers: enough to
// hold a burst of breaches for postmortem inspection, small enough
// that /stats stays cheap.
const slowRingSize = 32

// SlowRequest is one captured SLO breach: the request's identity and
// trace context plus whatever explain evidence the handler attached —
// the fill-core stage breakdown on a worker, the per-shard dispatch
// traces on a coordinator. It is the record an operator reads to
// answer "why was this one slow" after the fact, without having had
// debug logging enabled at the time.
type SlowRequest struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	Status int    `json:"status"`
	// Start is when the request began; DurationMillis its total time.
	Start          time.Time `json:"start"`
	DurationMillis float64   `json:"duration_ms"`
	// Rid and Span join the capture to the fleet's access logs.
	Rid  string `json:"rid,omitempty"`
	Span string `json:"span,omitempty"`
	// Explain is the fill-core stage trace of the slowest traced fill
	// in the request, when one ran.
	Explain *core.Trace `json:"explain,omitempty"`
	// Shards is the coordinator's dispatch breakdown, when the request
	// was sharded across a fleet.
	Shards []ShardTrace `json:"shards,omitempty"`
}

// SlowRing is a bounded ring of captured slow requests, newest first
// in snapshots. The zero value is not usable; a nil *SlowRing is a
// safe no-op everywhere, so disabling capture costs one nil check.
type SlowRing struct {
	mu sync.Mutex
	// dpvet:guardedby mu
	buf []SlowRequest
	// dpvet:guardedby mu
	next int
	// dpvet:guardedby mu
	count int
}

// NewSlowRing builds a ring holding the most recent n captures.
func NewSlowRing(n int) *SlowRing {
	if n <= 0 {
		n = slowRingSize
	}
	return &SlowRing{buf: make([]SlowRequest, n)}
}

// Add records one capture, evicting the oldest when full.
func (r *SlowRing) Add(sr SlowRequest) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = sr
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
	r.mu.Unlock()
}

// Snapshot returns the captured requests, newest first; nil when the
// ring is nil or empty.
func (r *SlowRing) Snapshot() []SlowRequest {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return nil
	}
	out := make([]SlowRequest, 0, r.count)
	for i := 1; i <= r.count; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// slowNote is the per-request annotation slot handlers write explain
// evidence into; the capture wrapper reads it after the response.
type slowNote struct {
	mu      sync.Mutex
	explain *core.Trace
	shards  []ShardTrace
}

type slowNoteKey struct{}

// AnnotateExplain attaches a fill's explain trace to the in-flight
// request's capture slot. When several fills run in one request (a
// batch), the one with the largest TotalNS wins — the slowest fill is
// the one an operator wants to see. A context without a slot (capture
// disabled, or not under CaptureSlow) is a no-op.
func AnnotateExplain(ctx context.Context, tr *core.Trace) {
	note, _ := ctx.Value(slowNoteKey{}).(*slowNote)
	if note == nil || tr == nil {
		return
	}
	note.mu.Lock()
	if note.explain == nil || tr.TotalNS > note.explain.TotalNS {
		note.explain = tr
	}
	note.mu.Unlock()
}

// AnnotateShards attaches a coordinator's per-shard dispatch traces to
// the in-flight request's capture slot.
func AnnotateShards(ctx context.Context, traces []ShardTrace) {
	note, _ := ctx.Value(slowNoteKey{}).(*slowNote)
	if note == nil || len(traces) == 0 {
		return
	}
	note.mu.Lock()
	note.shards = traces
	note.mu.Unlock()
}

// CaptureSlow wraps next with the SLO measurement layer: every /v1/*
// request is observed against the SLO, and breaches are snapshotted —
// trace IDs, status, duration and any explain evidence the handlers
// annotated — into the ring. With a nil ring (capture disabled) next
// is returned unwrapped. Mounted inside reqid.Middleware so the trace
// context is already on the request.
func CaptureSlow(ring *SlowRing, slo *prom.SLO, next http.Handler) http.Handler {
	if ring == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		note := &slowNote{}
		ctx := context.WithValue(r.Context(), slowNoteKey{}, note)
		sw := &captureWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		if slo == nil || !slo.Observe(elapsed) {
			return
		}
		tr := reqid.TraceFrom(r.Context())
		note.mu.Lock()
		explain, shards := note.explain, note.shards
		note.mu.Unlock()
		ring.Add(SlowRequest{
			Method:         r.Method,
			Path:           r.URL.Path,
			Status:         sw.status,
			Start:          start,
			DurationMillis: float64(elapsed.Nanoseconds()) / 1e6,
			Rid:            tr.ID,
			Span:           tr.Span,
			Explain:        explain,
			Shards:         shards,
		})
	})
}

// captureWriter records the response status for the slow snapshot,
// forwarding Flush for SSE streams.
type captureWriter struct {
	http.ResponseWriter
	status int
}

func (w *captureWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *captureWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
