package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/cube"
	"repro/internal/engine"
	"repro/internal/jobs"
)

// doJSON sends a bodyless request and decodes the JSON response.
func doJSON(t *testing.T, method, url string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// waitJobState polls GET /v1/jobs/{id} until the job reaches want.
func waitJobState(t *testing.T, baseURL, id string, want jobs.State) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var st jobs.Status
	for time.Now().Before(deadline) {
		if code := doJSON(t, http.MethodGet, baseURL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if st.State == want {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (stuck at %s)", id, want, st.State)
	return jobs.Status{}
}

// assertBatchItemParity requires the async result to carry the exact
// cubes, perm, peak and total of the synchronous answer, error slots
// aligned.
func assertBatchItemParity(t *testing.T, got, want *BatchResponse) {
	t.Helper()
	if len(got.Results) != len(want.Results) || got.Failed != want.Failed {
		t.Fatalf("shape mismatch: %d/%d results, %d/%d failed",
			len(got.Results), len(want.Results), got.Failed, want.Failed)
	}
	for i := range want.Results {
		g, w := got.Results[i], want.Results[i]
		if (g.Error != "") != (w.Error != "") {
			t.Fatalf("item %d: error %q vs %q", i, g.Error, w.Error)
		}
		if w.Error != "" {
			continue
		}
		if g.Result.Peak != w.Result.Peak || g.Result.Total != w.Result.Total {
			t.Fatalf("item %d: peak/total %d/%d, want %d/%d",
				i, g.Result.Peak, g.Result.Total, w.Result.Peak, w.Result.Total)
		}
		if fmt.Sprint(g.Result.Cubes) != fmt.Sprint(w.Result.Cubes) {
			t.Fatalf("item %d: cubes differ:\n%v\nvs\n%v", i, g.Result.Cubes, w.Result.Cubes)
		}
		if fmt.Sprint(g.Result.Perm) != fmt.Sprint(w.Result.Perm) {
			t.Fatalf("item %d: perm differs: %v vs %v", i, g.Result.Perm, w.Result.Perm)
		}
	}
}

// asyncParityBatch is a mixed batch: two fillers, a duplicate job and
// one invalid job, so parity covers dedup and error slots too.
func asyncParityBatch() BatchRequest {
	return BatchRequest{Jobs: []FillRequest{
		{Name: "a", Cubes: []string{"0XX1X", "1XX0X", "X10XX"}},
		{Name: "bad", Cubes: []string{"0z"}},
		{Name: "b", Cubes: []string{"00X", "X1X", "1X0"}, Filler: "mt", Orderer: "i"},
		{Name: "a-again", Cubes: []string{"0XX1X", "1XX0X", "X10XX"}},
	}}
}

// TestAsyncJobMatchesSyncBatch pins the tentpole contract on a single
// worker: a batch submitted through POST /v1/jobs answers with the
// same cubes, perm, peak and total as POST /v1/batch.
func TestAsyncJobMatchesSyncBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := asyncParityBatch()
	var want BatchResponse
	if code := post(t, ts.URL+"/v1/batch", req, &want); code != http.StatusOK {
		t.Fatalf("sync batch: status %d", code)
	}
	var st jobs.Status
	if code := post(t, ts.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if st.ID == "" || st.Total != len(req.Jobs) {
		t.Fatalf("submit snapshot: %+v", st)
	}
	final := waitJobState(t, ts.URL, st.ID, jobs.StateDone)
	var got BatchResponse
	if err := json.Unmarshal(final.Result, &got); err != nil {
		t.Fatalf("decoding job result: %v", err)
	}
	assertBatchItemParity(t, &got, &want)
}

// TestAsyncJobSurvivesRestart pins the WAL contract: a settled job's
// result is served byte-identically by a fresh server over the same
// data directory, without re-running anything.
func TestAsyncJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := asyncParityBatch()

	s1, ts1 := newTestServer(t, Config{Workers: 2, DataDir: dir})
	var want BatchResponse
	if code := post(t, ts1.URL+"/v1/batch", req, &want); code != http.StatusOK {
		t.Fatalf("sync batch: status %d", code)
	}
	var st jobs.Status
	if code := post(t, ts1.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	settled := waitJobState(t, ts1.URL, st.ID, jobs.StateDone)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, Config{Workers: 2, DataDir: dir})
	var replayed jobs.Status
	if code := doJSON(t, http.MethodGet, ts2.URL+"/v1/jobs/"+st.ID, &replayed); code != http.StatusOK {
		t.Fatalf("GET replayed job: status %d", code)
	}
	if replayed.State != jobs.StateDone {
		t.Fatalf("replayed state %s, want done", replayed.State)
	}
	if string(replayed.Result) != string(settled.Result) {
		t.Fatalf("replayed result differs from the recorded one:\n%s\nvs\n%s", replayed.Result, settled.Result)
	}
	var got BatchResponse
	if err := json.Unmarshal(replayed.Result, &got); err != nil {
		t.Fatal(err)
	}
	assertBatchItemParity(t, &got, &want)
}

// blockingFiller parks every Fill until release is closed, so tests
// can hold the engine's only worker slot deterministically.
type blockingFiller struct{ release chan struct{} }

func (f blockingFiller) Name() string { return "block" }
func (f blockingFiller) Fill(s *cube.Set) (*cube.Set, error) {
	<-f.release
	return s.Clone(), nil
}

// blockEngine occupies every worker slot of a 1-worker engine and
// returns the release gate plus a done channel.
func blockEngine(t *testing.T, eng *engine.Engine) (release chan struct{}, done chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	done = make(chan struct{})
	go func() {
		defer close(done)
		eng.Run(context.Background(), []engine.Job{{
			Name: "blocker", Set: cube.MustParseSet("0X"), Filler: blockingFiller{release},
		}})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, inflight := eng.Load(); inflight == 1 {
			return release, done
		}
		if time.Now().After(deadline) {
			t.Fatal("blocker never occupied the engine")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncJobReplayAfterKillMidBatch kills the daemon (Close is the
// in-process stand-in for SIGKILL: the journal holds an accept record
// and no terminal record) while the job's batch is wedged behind the
// engine semaphore, then requires a fresh server over the same data
// directory to re-run it and answer exactly what /v1/batch answers.
func TestAsyncJobReplayAfterKillMidBatch(t *testing.T) {
	dir := t.TempDir()
	eng := engine.New(1)
	release, done := blockEngine(t, eng)
	s1, ts1 := newTestServer(t, Config{Engine: eng, DataDir: dir})
	req := BatchRequest{Jobs: []FillRequest{{Name: "k", Cubes: []string{"0XX1", "1XX0", "X10X"}}}}
	var st jobs.Status
	if code := post(t, ts1.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// The job must be mid-run — accepted, journaled, wedged at the
	// engine — when the daemon dies.
	waitJobState(t, ts1.URL, st.ID, jobs.StateRunning)
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	close(release)
	<-done

	_, ts2 := newTestServer(t, Config{Workers: 2, DataDir: dir})
	final := waitJobState(t, ts2.URL, st.ID, jobs.StateDone)
	var got BatchResponse
	if err := json.Unmarshal(final.Result, &got); err != nil {
		t.Fatal(err)
	}
	var want BatchResponse
	if code := post(t, ts2.URL+"/v1/batch", req, &want); code != http.StatusOK {
		t.Fatalf("sync batch: status %d", code)
	}
	assertBatchItemParity(t, &got, &want)
}

// TestAsyncJobCancelAtEngineQueue cancels a job whose batch is queued
// behind a saturated engine: the DELETE must interrupt the engine-level
// wait and settle the job cancelled, without waiting for the blocker.
func TestAsyncJobCancelAtEngineQueue(t *testing.T) {
	eng := engine.New(1)
	release, done := blockEngine(t, eng)
	defer func() { close(release); <-done }()
	_, ts := newTestServer(t, Config{Engine: eng})
	req := BatchRequest{Jobs: []FillRequest{{Cubes: []string{"0X", "X1"}}}}
	var st jobs.Status
	if code := post(t, ts.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitJobState(t, ts.URL, st.ID, jobs.StateRunning)
	var cancelled jobs.Status
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	final := waitJobState(t, ts.URL, st.ID, jobs.StateCancelled)
	if final.Result != nil {
		t.Fatal("cancelled job kept a result")
	}
	// A settled job cannot be cancelled again.
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil); code != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", code)
	}
}

// TestAsyncJobAdmissionControl pins the 429 path: with the queue full,
// submits bounce instead of buffering without bound.
func TestAsyncJobAdmissionControl(t *testing.T) {
	eng := engine.New(1)
	release, done := blockEngine(t, eng)
	defer func() { close(release); <-done }()
	_, ts := newTestServer(t, Config{Engine: eng, MaxQueuedJobs: 1})
	req := BatchRequest{Jobs: []FillRequest{{Cubes: []string{"0X", "X1"}}}}
	if code := post(t, ts.URL+"/v1/jobs", req, nil); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	var errResp errorResponse
	if code := post(t, ts.URL+"/v1/jobs", req, &errResp); code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", code)
	}
	if errResp.Error == "" {
		t.Fatal("429 carried no error payload")
	}
}

// TestAsyncJobValidationAndLookups covers the remaining API edges:
// submit validation mirrors /v1/batch, unknown IDs are 404, and the
// listing carries retained jobs without result payloads.
func TestAsyncJobValidationAndLookups(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchJobs: 2})
	if code := post(t, ts.URL+"/v1/jobs", BatchRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty submit: status %d, want 400", code)
	}
	three := BatchRequest{Jobs: make([]FillRequest, 3)}
	if code := post(t, ts.URL+"/v1/jobs", three, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized submit: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/absent", nil); code != http.StatusNotFound {
		t.Fatalf("unknown get: status %d, want 404", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/absent", nil); code != http.StatusNotFound {
		t.Fatalf("unknown cancel: status %d, want 404", code)
	}
	req := BatchRequest{Jobs: []FillRequest{{Cubes: []string{"0X", "X1"}}}}
	var st jobs.Status
	if code := post(t, ts.URL+"/v1/jobs", req, &st); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	waitJobState(t, ts.URL, st.ID, jobs.StateDone)
	var list jobs.StatusList
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
	if list.Jobs[0].Result != nil {
		t.Fatal("listing leaked a result payload")
	}
}
