package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cube"
)

func TestOptimalPeakRefusesLarge(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := randomSet(r, 3, 10, 0.5)
	if _, _, err := OptimalPeak(s); err == nil {
		t.Fatal("n=10 accepted")
	}
}

func TestOptimalPeakDegenerate(t *testing.T) {
	s := cube.MustParseSet("0X1")
	peak, perm, err := OptimalPeak(s)
	if err != nil || peak != 0 || len(perm) != 1 {
		t.Fatalf("peak=%d perm=%v err=%v", peak, perm, err)
	}
}

func TestOptimalPeakKnownInstance(t *testing.T) {
	// Two complementary dense cubes and two all-X cubes: the optimum
	// separates the dense pair with X cubes; placing them adjacent
	// would cost width toggles, separated costs ceil(w / 3) per cycle
	// after spreading... verify against the exhaustive value directly
	// and check the heuristics cannot beat it.
	s := cube.MustParseSet("0000", "1111", "XXXX", "XXXX")
	opt, perm, err := OptimalPeak(s)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(perm, 4) {
		t.Fatalf("perm = %v", perm)
	}
	// Toggles cannot be fewer than ceil(4 toggles / 3 cycles) = 2.
	if opt != 2 {
		t.Fatalf("optimal peak = %d, want 2", opt)
	}
	got, err := core.Bottleneck(s.Reorder(perm))
	if err != nil || got != opt {
		t.Fatalf("returned perm achieves %d, claims %d", got, opt)
	}
}

// TestPropertyHeuristicsNeverBeatOptimal: the exhaustive optimum lower-
// bounds every heuristic ordering's DP-fill peak, and the returned
// permutation attains the claimed value.
func TestPropertyHeuristicsNeverBeatOptimal(t *testing.T) {
	orderers := append(All(), ISA(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 1+r.Intn(5), 2+r.Intn(5), 0.5)
		opt, optPerm, err := OptimalPeak(s)
		if err != nil {
			return false
		}
		if got, err := core.Bottleneck(s.Reorder(optPerm)); err != nil || got != opt {
			return false
		}
		for _, o := range orderers {
			perm, err := o.Order(s)
			if err != nil {
				return false
			}
			peak, err := core.Bottleneck(s.Reorder(perm))
			if err != nil || peak < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestIOrderingNearOptimalOnSmallSets quantifies the gap left by the
// paper's open question: across random small instances, how far is
// I-Ordering + DP-fill from the joint optimum?
func TestIOrderingNearOptimalOnSmallSets(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	total, gap := 0, 0
	for trial := 0; trial < 30; trial++ {
		s := randomSet(r, 4, 6, 0.6)
		opt, _, err := OptimalPeak(s)
		if err != nil {
			t.Fatal(err)
		}
		perm, err := Interleaved().Order(s)
		if err != nil {
			t.Fatal(err)
		}
		peak, err := core.Bottleneck(s.Reorder(perm))
		if err != nil {
			t.Fatal(err)
		}
		total++
		gap += peak - opt
		if peak < opt {
			t.Fatalf("heuristic beat the exhaustive optimum: %d < %d", peak, opt)
		}
	}
	t.Logf("I-Ordering average gap to joint optimum: %.2f toggles over %d instances",
		float64(gap)/float64(total), total)
}
