package order

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cube"
)

func randomSet(r *rand.Rand, width, n int, xProb float64) *cube.Set {
	s := cube.NewSet(width)
	for v := 0; v < n; v++ {
		c := make(cube.Cube, width)
		for i := range c {
			switch {
			case r.Float64() < xProb:
				c[i] = cube.X
			case r.Intn(2) == 0:
				c[i] = cube.Zero
			default:
				c[i] = cube.One
			}
		}
		s.Append(c)
	}
	return s
}

func isPermutation(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

func TestIdentity(t *testing.T) {
	p := Identity(4)
	for i, v := range p {
		if v != i {
			t.Fatalf("Identity = %v", p)
		}
	}
}

func TestToolIsIdentity(t *testing.T) {
	s := cube.MustParseSet("0X", "1X", "XX")
	perm, err := Tool().Order(s)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(perm, 3) {
		t.Fatalf("perm = %v", perm)
	}
	for i, v := range perm {
		if v != i {
			t.Fatalf("tool order = %v, want identity", perm)
		}
	}
}

func TestXStatStartsWithDensestCube(t *testing.T) {
	s := cube.MustParseSet("XXXX", "0101", "XX01")
	perm, err := XStat().Order(s)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 1 {
		t.Fatalf("X-Stat order = %v, want cube 1 (fully specified) first", perm)
	}
}

func TestXStatEmptySet(t *testing.T) {
	perm, err := XStat().Order(cube.NewSet(3))
	if err != nil || perm != nil {
		t.Fatalf("empty: %v %v", perm, err)
	}
}

func TestXStatPrefersCompatibleNeighbour(t *testing.T) {
	// After the dense anchor "0000", cube "000X" (hd 0) must precede
	// "1111" (hd 4).
	s := cube.MustParseSet("0000", "1111", "000X")
	perm, err := XStat().Order(s)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 0 || perm[1] != 2 || perm[2] != 1 {
		t.Fatalf("order = %v, want [0 2 1]", perm)
	}
}

func TestISADeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	s := randomSet(r, 10, 20, 0.5)
	a, err := ISA(7).Order(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ISA(7).Order(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed differs: %v vs %v", a, b)
		}
	}
}

func TestISASmallSets(t *testing.T) {
	for n := 0; n <= 2; n++ {
		s := cube.NewSet(2)
		for i := 0; i < n; i++ {
			s.Append(cube.MustParse("01"))
		}
		perm, err := ISA(1).Order(s)
		if err != nil {
			t.Fatal(err)
		}
		if !isPermutation(perm, n) {
			t.Fatalf("n=%d perm=%v", n, perm)
		}
	}
}

func TestISAImprovesOnPathologicalOrder(t *testing.T) {
	// Alternating all-zeros / all-ones cubes: tool order peak is width;
	// any sane reordering groups equal cubes and achieves peak width at
	// exactly one boundary... but with 4+4 cubes the SA must reach peak
	// = width at one cycle only, and total far lower. Check peak <= tool.
	s := cube.NewSet(6)
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			s.Append(cube.MustParse("000000"))
		} else {
			s.Append(cube.MustParse("111111"))
		}
	}
	perm, err := ISA(3).Order(s)
	if err != nil {
		t.Fatal(err)
	}
	re := s.Reorder(perm)
	if re.TotalToggles() > s.TotalToggles() {
		t.Fatalf("ISA total %d worse than tool %d", re.TotalToggles(), s.TotalToggles())
	}
}

func TestInterleaveShape(t *testing.T) {
	// n=6, k=1: rounds=3, perm = f0 b0 f1 b1 f2 b2 with back blocks of 1.
	tp := []int{0, 1, 2, 3, 4, 5}
	got := interleave(tp, 1)
	want := []int{0, 5, 1, 4, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave k=1 = %v, want %v", got, want)
		}
	}
	// k=2: rounds=2, fronts 0,1; back blocks (5,4) then (3,2).
	got = interleave(tp, 2)
	want = []int{0, 5, 4, 1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave k=2 = %v, want %v", got, want)
		}
	}
	// k=5: rounds=1: front 0 then the rest descending.
	got = interleave(tp, 5)
	want = []int{0, 5, 4, 3, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave k=5 = %v, want %v", got, want)
		}
	}
}

func TestInterleaveLeftovers(t *testing.T) {
	// n=7, k=2: rounds=2, consumes fronts 0,1 and backs 6,5,4,3; index 2
	// is the leftover middle cube appended last.
	got := interleave([]int{0, 1, 2, 3, 4, 5, 6}, 2)
	want := []int{0, 6, 5, 1, 4, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave n=7 k=2 = %v, want %v", got, want)
		}
	}
}

func TestInterleavedTraceMonotoneStop(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	s := randomSet(r, 12, 24, 0.7)
	perm, traces, err := InterleavedTrace(s)
	if err != nil {
		t.Fatal(err)
	}
	if !isPermutation(perm, s.Len()) {
		t.Fatalf("perm = %v", perm)
	}
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	// Every trace except possibly the last must strictly improve.
	for i := 1; i < len(traces)-1; i++ {
		if traces[i].Peak >= traces[i-1].Peak {
			t.Fatalf("trace %d did not improve: %+v", i, traces)
		}
	}
	// ks must be 1,2,3,...
	for i, tr := range traces {
		if tr.K != i+1 {
			t.Fatalf("trace ks = %+v", traces)
		}
	}
}

func TestInterleavedBeatsToolOnStructuredSet(t *testing.T) {
	// Construct a set where care-dense cubes are adjacent in tool order:
	// interleaving must strictly reduce the optimal bottleneck.
	dense := []string{"01010101", "10101010", "01100110", "10011001"}
	sparse := []string{"0XXXXXXX", "XXXX1XXX", "XX0XXXXX", "XXXXXX1X",
		"X1XXXXXX", "XXXXX0XX", "XXX1XXXX", "XXXXXXX0"}
	s := cube.NewSet(8)
	for _, d := range dense {
		s.Append(cube.MustParse(d))
	}
	for _, sp := range sparse {
		s.Append(cube.MustParse(sp))
	}
	toolPeak, err := core.Bottleneck(s)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := Interleaved().Order(s)
	if err != nil {
		t.Fatal(err)
	}
	iPeak, err := core.Bottleneck(s.Reorder(perm))
	if err != nil {
		t.Fatal(err)
	}
	if iPeak > toolPeak {
		t.Fatalf("I-Order peak %d worse than tool %d", iPeak, toolPeak)
	}
	if iPeak == toolPeak {
		t.Logf("note: tie at %d (acceptable but unexpected for this fixture)", iPeak)
	}
}

func TestAllNames(t *testing.T) {
	want := []string{"Tool", "X-Stat", "I-Order"}
	all := All()
	for i, o := range all {
		if o.Name() != want[i] {
			t.Fatalf("All()[%d] = %q", i, o.Name())
		}
	}
	if ISA(1).Name() != "ISA" {
		t.Fatal("ISA name")
	}
}

// TestPropertyOrderingsArePermutations: every orderer returns a valid
// permutation for random inputs.
func TestPropertyOrderingsArePermutations(t *testing.T) {
	orderers := append(All(), ISA(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 1+r.Intn(10), 1+r.Intn(16), 0.6)
		for _, o := range orderers {
			perm, err := o.Order(s)
			if err != nil || !isPermutation(perm, s.Len()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOrderingPreservesMultiset: reordering never changes the
// multiset of cubes (checked via sorted string forms).
func TestPropertyOrderingPreservesMultiset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 1+r.Intn(6), 1+r.Intn(10), 0.5)
		perm, err := Interleaved().Order(s)
		if err != nil {
			return false
		}
		re := s.Reorder(perm)
		count := map[string]int{}
		for _, c := range s.Cubes {
			count[c.String()]++
		}
		for _, c := range re.Cubes {
			count[c.String()]--
		}
		for _, v := range count {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertySAStateConsistent: the incremental edge histogram always
// matches a from-scratch recomputation after random swaps.
func TestPropertySAStateConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSet(r, 1+r.Intn(8), 3+r.Intn(10), 0.5)
		p := cube.Pack(s)
		st := newSAState(p, Identity(s.Len()))
		for step := 0; step < 50; step++ {
			i := r.Intn(s.Len())
			j := r.Intn(s.Len())
			if i == j {
				continue
			}
			u := st.swap(i, j)
			if r.Intn(2) == 0 {
				st.unswap(u)
			}
			// Reference peak.
			ref := 0
			for e := 0; e+1 < s.Len(); e++ {
				if c := p.Expected2(st.perm[e], st.perm[e+1]); c > ref {
					ref = c
				}
			}
			if st.peak() != ref {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
