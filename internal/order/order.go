// Package order implements the test-vector orderings evaluated in the
// paper: the ATPG tool order (Table II), the X-Stat ordering of [22]
// (Table III), the proposed interleaved I-Ordering of Algorithm 3
// (Table IV) and the ISA ordering of [20] (Table V baseline).
//
// An ordering maps a cube set to a permutation; the cubes themselves are
// never modified. Peak toggles are then measured on the reordered set
// after X-filling, so orderings and fills compose freely.
package order

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cube"
)

// Orderer is a named test-vector ordering algorithm.
type Orderer interface {
	// Name returns the short name used in tables.
	Name() string
	// Order returns a permutation perm such that s.Reorder(perm) is the
	// proposed application order.
	Order(s *cube.Set) ([]int, error)
}

// Func adapts a function to the Orderer interface.
type Func struct {
	OrderName string
	F         func(*cube.Set) ([]int, error)
}

// Name implements Orderer.
func (f Func) Name() string { return f.OrderName }

// Order implements Orderer.
func (f Func) Order(s *cube.Set) ([]int, error) { return f.F(s) }

// Identity returns the identity permutation of length n.
func Identity(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Tool returns the "tool ordering": the order in which the ATPG emitted
// the patterns, i.e. the identity permutation. This is the Table II
// baseline (the paper's TetraMax order; our ATPG's generation order).
func Tool() Orderer {
	return Func{OrderName: "Tool", F: func(s *cube.Set) ([]int, error) {
		return Identity(s.Len()), nil
	}}
}

// XStat returns the X-Stat ordering, standing in for the ordering of
// [22] (paper unavailable — see DESIGN.md substitutions): a greedy
// nearest-neighbour chain that starts from the cube with the most care
// bits and repeatedly appends the cube with the fewest guaranteed
// toggles against the current tail, breaking ties toward higher X
// overlap (longer don't-care stretches).
func XStat() Orderer {
	return Func{OrderName: "X-Stat", F: func(s *cube.Set) ([]int, error) {
		n := s.Len()
		if n == 0 {
			return nil, nil
		}
		p := cube.Pack(s)
		used := make([]bool, n)
		// Start from the cube with the most specified bits: it anchors
		// the chain where the least filling freedom exists.
		start := 0
		for i := 1; i < n; i++ {
			if p.CareCount(i) > p.CareCount(start) {
				start = i
			}
		}
		perm := make([]int, 0, n)
		perm = append(perm, start)
		used[start] = true
		for len(perm) < n {
			tail := perm[len(perm)-1]
			best, bestHD, bestOverlap := -1, 0, -1
			for i := 0; i < n; i++ {
				if used[i] {
					continue
				}
				hd := p.HD(tail, i)
				overlap := p.XUnion(tail, i)
				if best == -1 || hd < bestHD || (hd == bestHD && overlap > bestOverlap) {
					best, bestHD, bestOverlap = i, hd, overlap
				}
			}
			perm = append(perm, best)
			used[best] = true
		}
		return perm, nil
	}}
}

// ISA returns the ISA ordering, standing in for Girard et al. [20]
// (vector ordering for test-power reduction; see DESIGN.md): a seeded
// simulated-annealing search over permutations minimizing the peak
// expected adjacent toggle count, refined from a greedy
// nearest-neighbour start. Costs are twice the expected distance so they
// stay integral; the annealer maintains the peak incrementally via a
// cost histogram, so each proposal is O(width/64).
func ISA(seed int64) Orderer {
	return Func{OrderName: "ISA", F: func(s *cube.Set) ([]int, error) {
		n := s.Len()
		if n <= 2 {
			return Identity(n), nil
		}
		p := cube.Pack(s)
		rng := rand.New(rand.NewSource(seed))

		perm := greedyExpected(p)
		st := newSAState(p, perm)
		best := append([]int(nil), perm...)
		bestPeak := st.peak()

		iters := 400 * n
		if iters > 120000 {
			iters = 120000
		}
		temp := float64(p.Width) / 2
		cool := 1 - 4.0/float64(iters)
		for it := 0; it < iters; it++ {
			i := 1 + rng.Intn(n-1)
			j := 1 + rng.Intn(n-1)
			if i == j {
				continue
			}
			before := st.peak()
			undo := st.swap(i, j)
			after := st.peak()
			if after <= before || rng.Float64() < annealAccept(before, after, temp) {
				if after < bestPeak {
					bestPeak = after
					copy(best, st.perm)
				}
			} else {
				st.unswap(undo)
			}
			temp *= cool
		}
		return best, nil
	}}
}

// annealAccept returns the acceptance probability for a worsening move:
// a rational decay temp/(temp+delta) standing in for exp(-delta/temp),
// monotone in both arguments and free of math imports.
func annealAccept(before, after int, temp float64) float64 {
	if temp <= 0 {
		return 0
	}
	d := float64(after - before)
	return temp / (temp + d)
}

// saState tracks a permutation, its adjacent edge costs (doubled
// expected distances) and a histogram of costs so the peak is available
// in O(1) amortized.
type saState struct {
	p     *cube.Packed
	perm  []int
	edges []int // edges[j] = cost(perm[j], perm[j+1])
	hist  []int // hist[c] = number of edges with cost c
	maxC  int   // current histogram peak (lazily lowered)
}

type saUndo struct {
	i, j int
}

func newSAState(p *cube.Packed, perm []int) *saState {
	st := &saState{p: p, perm: perm, hist: make([]int, 2*p.Width+1)}
	st.edges = make([]int, len(perm)-1)
	for j := 0; j+1 < len(perm); j++ {
		c := p.Expected2(perm[j], perm[j+1])
		st.edges[j] = c
		st.hist[c]++
		if c > st.maxC {
			st.maxC = c
		}
	}
	return st
}

func (st *saState) peak() int {
	for st.maxC > 0 && st.hist[st.maxC] == 0 {
		st.maxC--
	}
	return st.maxC
}

func (st *saState) setEdge(j, c int) {
	st.hist[st.edges[j]]--
	st.edges[j] = c
	st.hist[c]++
	if c > st.maxC {
		st.maxC = c
	}
}

// touchedEdges returns the edge indices incident to position i.
func (st *saState) touchedEdges(i int, out []int) []int {
	if i > 0 {
		out = append(out, i-1)
	}
	if i < len(st.edges) {
		out = append(out, i)
	}
	return out
}

// swap exchanges positions i and j and refreshes the incident edges.
func (st *saState) swap(i, j int) saUndo {
	st.perm[i], st.perm[j] = st.perm[j], st.perm[i]
	var buf [4]int
	touched := st.touchedEdges(i, buf[:0])
	touched = st.touchedEdges(j, touched)
	for _, e := range touched {
		st.setEdge(e, st.p.Expected2(st.perm[e], st.perm[e+1]))
	}
	return saUndo{i: i, j: j}
}

func (st *saState) unswap(u saUndo) {
	st.swap(u.i, u.j)
}

func greedyExpected(p *cube.Packed) []int {
	n := p.Len()
	used := make([]bool, n)
	perm := make([]int, 0, n)
	perm = append(perm, 0)
	used[0] = true
	for len(perm) < n {
		tail := perm[len(perm)-1]
		best, bestD := -1, 0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			d := p.Expected2(tail, i)
			if best == -1 || d < bestD {
				best, bestD = i, d
			}
		}
		perm = append(perm, best)
		used[best] = true
	}
	return perm
}

// Trace records one Algorithm 3 iteration: the interleave size k and the
// optimal bottleneck value DP-fill reports for that interleaving. Traces
// feed Fig. 2(a) and 2(b).
type Trace struct {
	K    int
	Peak int
}

// Interleaved returns the paper's I-Ordering (Algorithm 3). Cubes are
// sorted by ascending X count into T'; for growing interleave size k the
// candidate order takes one care-dense cube from the front of T'
// followed by k X-rich cubes from the back, evaluates the optimal
// bottleneck via DP-fill, and stops as soon as k+1 fails to improve on
// k. The best order seen is returned.
func Interleaved() Orderer { return interleaved{} }

type interleaved struct{}

// Name implements Orderer.
func (interleaved) Name() string { return "I-Order" }

// Order implements Orderer.
func (interleaved) Order(s *cube.Set) ([]int, error) {
	perm, _, err := InterleavedTrace(s)
	return perm, err
}

// InterleavedTrace is Order plus the per-iteration trace used by
// Fig. 2(a)/(b).
func InterleavedTrace(s *cube.Set) ([]int, []Trace, error) {
	n := s.Len()
	if n <= 2 {
		return Identity(n), nil, nil
	}
	// T': indices sorted by ascending X count (stable so equal-X cubes
	// keep tool order, making the ordering deterministic).
	tp := Identity(n)
	sort.SliceStable(tp, func(a, b int) bool {
		return s.Cubes[tp[a]].XCount() < s.Cubes[tp[b]].XCount()
	})

	var traces []Trace
	bestPeak := -1
	var bestPerm []int
	for k := 1; k < n; k++ {
		perm := interleave(tp, k)
		reordered := s.Reorder(perm)
		peak, err := core.Bottleneck(reordered)
		if err != nil {
			return nil, nil, fmt.Errorf("order: evaluating k=%d: %w", k, err)
		}
		traces = append(traces, Trace{K: k, Peak: peak})
		if bestPeak == -1 || peak < bestPeak {
			bestPeak = peak
			bestPerm = perm
		} else {
			break // Algorithm 3 exit_flag: first non-improving k stops.
		}
	}
	return bestPerm, traces, nil
}

// interleave builds the Algorithm 3 candidate for interleaving size k
// from the X-sorted index list tp: front cubes are care-dense, back
// cubes are X-rich.
func interleave(tp []int, k int) []int {
	n := len(tp)
	rounds := n / (k + 1)
	perm := make([]int, 0, n)
	used := make([]bool, n)
	for i := 0; i < rounds; i++ {
		// Pick the i-th care-dense cube from the front...
		perm = append(perm, tp[i])
		used[i] = true
		// ...then k X-rich cubes from the back, descending.
		hi := n - i*k // one past the block start
		for t := 1; t <= k; t++ {
			pos := hi - t
			perm = append(perm, tp[pos])
			used[pos] = true
		}
	}
	// Leftover middle cubes (at most k) keep their T' order.
	for i := 0; i < n; i++ {
		if !used[i] {
			perm = append(perm, tp[i])
		}
	}
	return perm
}

// All returns the three orderings of Tables II–IV in order: Tool,
// X-Stat, I-Order.
func All() []Orderer {
	return []Orderer{Tool(), XStat(), Interleaved()}
}

// ByName resolves an orderer from its CLI/API spelling
// (case-insensitive): tool, xstat|x-stat, i|iorder|i-order, isa. The
// seed fixes the ISA annealing schedule. Shared by cmd/dpfill and the
// HTTP fill service, so the two front-ends accept the same names.
func ByName(name string, seed int64) (Orderer, error) {
	switch strings.ToLower(name) {
	case "tool":
		return Tool(), nil
	case "xstat", "x-stat":
		return XStat(), nil
	case "i", "iorder", "i-order":
		return Interleaved(), nil
	case "isa":
		return ISA(seed), nil
	default:
		return nil, fmt.Errorf("order: unknown ordering %q", name)
	}
}

// InterleaveK exposes the Algorithm 3 interleaving step for a given k
// over an X-sorted index list — used by analysis tooling and ablation
// benches to isolate the interleave from the k search.
func InterleaveK(tp []int, k int) []int { return interleave(tp, k) }
