package order

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
)

// OptimalPeak exhaustively searches all orderings of s and returns the
// minimum achievable DP-fill peak together with a permutation attaining
// it. Factorial in n; it exists so tests and ablations can measure how
// close the heuristic orderings (I-Ordering, X-Stat, ISA) come to the
// joint ordering+filling optimum on small instances — a question the
// paper leaves open (it proves optimality per ordering, not across
// orderings). Instances with n > 9 are refused.
func OptimalPeak(s *cube.Set) (int, []int, error) {
	n := s.Len()
	if n > 9 {
		return 0, nil, fmt.Errorf("order: exhaustive search refused for n=%d > 9", n)
	}
	if n <= 1 {
		return 0, Identity(n), nil
	}
	perm := Identity(n)
	best := -1
	var bestPerm []int
	// Heap's algorithm over permutations; the first position can be
	// fixed only if toggles were symmetric under reversal — they are
	// (Hamming distance is symmetric), but keep it simple and enumerate
	// everything: n <= 9 means at most 362880 evaluations.
	var rec func(k int) error
	rec = func(k int) error {
		if k == n {
			peak, err := core.Bottleneck(s.Reorder(perm))
			if err != nil {
				return err
			}
			if best == -1 || peak < best {
				best = peak
				bestPerm = append(bestPerm[:0], perm...)
			}
			return nil
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if err := rec(k + 1); err != nil {
				return err
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, nil, err
	}
	return best, bestPerm, nil
}
