package pipeline

import (
	"context"
	"fmt"
	"time"

	"repro/internal/atpg"
	"repro/internal/circuit"
	"repro/internal/cube"
	"repro/internal/order"
	"repro/internal/power"
	"repro/internal/scan"
)

// RunOptions carries the serving layer's hooks into a run.
type RunOptions struct {
	// Progress, when non-nil, receives the cumulative completed step
	// count (out of Request.Steps()) as stages finish — the async job
	// layer forwards it to SSE watchers.
	Progress func(done int)
	// MaxGates, when positive, rejects resolved circuits with more
	// gates — the serving layer's shape limit, so a one-line spec
	// ("b19") cannot demand a 146k-gate run from a capped server.
	MaxGates int
}

func (o RunOptions) progress(done int) {
	if o.Progress != nil {
		o.Progress(done)
	}
}

func millis(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// Info summarizes a circuit for the report.
func Info(c *circuit.Circuit) CircuitInfo {
	return CircuitInfo{
		Name:  c.Name,
		PIs:   len(c.PIs),
		FFs:   len(c.DFFs),
		Width: c.NumInputs(),
		Gates: c.NumLogicGates(),
		POs:   len(c.POs),
	}
}

func (r Request) seed() int64 {
	if r.Seed == 0 {
		return 1
	}
	return r.Seed
}

func (r Request) atpgOptions(shard int) atpg.Options {
	return atpg.Options{
		BacktrackLimit: r.ATPG.BacktrackLimit,
		MaxFaults:      r.ATPG.MaxFaults,
		MaxPatterns:    r.ATPG.MaxPatterns,
		NoCompact:      r.ATPG.NoCompact,
		Seed:           r.seed(),
		Shard:          shard,
		NumShards:      r.Shards(),
	}
}

func reportName(req Request, c *circuit.Circuit) string {
	if req.Name != "" {
		return req.Name
	}
	return c.Name
}

func cubeStrings(set *cube.Set) []string {
	out := make([]string, set.Len())
	for i, cb := range set.Cubes {
		out[i] = cb.String()
	}
	return out
}

// addStats folds one shard's generation counters into the aggregate.
func addStats(agg *ATPGReport, st atpg.Stats) {
	agg.TotalFaults += st.TotalFaults
	agg.Detected += st.Detected
	agg.Untestable += st.Untestable
	agg.Aborted += st.Aborted
	agg.DroppedBySim += st.DroppedBySim
	agg.Merged += st.Merged
}

// shardStage names the timing entry for shard k of K.
func shardStage(k, total int) string {
	if total <= 1 {
		return "atpg"
	}
	return fmt.Sprintf("atpg/%d", k)
}

// Run executes the request locally: resolve the circuit, run every
// ATPG fault shard in order, then Finish (coverage curve, fill,
// power). StageATPG requests stop after their single shard and return
// its cubes for a remote merger.
func Run(ctx context.Context, req Request, opt RunOptions) (*Report, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	c, err := ResolveCircuit(req)
	if err != nil {
		return nil, err
	}
	if opt.MaxGates > 0 && len(c.Gates) > opt.MaxGates {
		return nil, badf("circuit %q has %d gates, exceeding the limit %d",
			c.Name, len(c.Gates), opt.MaxGates)
	}
	stages := []StageTiming{{Stage: "netlist", DurationMillis: millis(time.Since(start))}}
	opt.progress(1)

	if req.Stage == StageATPG {
		return runShard(ctx, req, c, stages, opt)
	}

	shards := req.Shards()
	merged := cube.NewSet(c.NumInputs())
	agg := ATPGReport{Shards: shards}
	for k := 0; k < shards; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		set, st, err := atpg.Generate(c, req.atpgOptions(k))
		if err != nil {
			return nil, err
		}
		addStats(&agg, st)
		for _, cb := range set.Cubes {
			merged.Append(cb)
		}
		stages = append(stages, StageTiming{Stage: shardStage(k, shards), DurationMillis: millis(time.Since(t0))})
		opt.progress(1 + k + 1)
	}
	return Finish(ctx, req, c, merged, agg, stages, opt)
}

// runShard answers a StageATPG request: one fault shard's cubes plus
// its counters, always carrying the cube matrix (it is the payload a
// coordinator merges).
func runShard(ctx context.Context, req Request, c *circuit.Circuit, stages []StageTiming, opt RunOptions) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	set, st, err := atpg.Generate(c, req.atpgOptions(req.ShardIndex))
	if err != nil {
		return nil, err
	}
	stages = append(stages, StageTiming{
		Stage:          shardStage(req.ShardIndex, req.Shards()),
		DurationMillis: millis(time.Since(t0)),
	})
	opt.progress(2)
	rep := &Report{
		Name:    reportName(req, c),
		Circuit: Info(c),
		ATPG: &ATPGReport{
			Shards:   req.Shards(),
			Patterns: set.Len(),
			Coverage: st.Coverage(),
			XPercent: set.XPercent(),
			Cubes:    cubeStrings(set),
		},
		Stages: stages,
	}
	addStats(rep.ATPG, st)
	return rep, nil
}

// MergeShards reassembles fanned-out shard reports in shard order into
// the merged cube set and the summed generation counters — the inputs
// Finish takes. It errors on a missing report or a width mismatch
// (protocol corruption, not a user error).
func MergeShards(width int, shards []*ATPGReport) (*cube.Set, ATPGReport, error) {
	merged := cube.NewSet(width)
	agg := ATPGReport{Shards: len(shards)}
	for i, sh := range shards {
		if sh == nil {
			return nil, agg, fmt.Errorf("pipeline: shard %d carries no atpg report", i)
		}
		agg.TotalFaults += sh.TotalFaults
		agg.Detected += sh.Detected
		agg.Untestable += sh.Untestable
		agg.Aborted += sh.Aborted
		agg.DroppedBySim += sh.DroppedBySim
		agg.Merged += sh.Merged
		if len(sh.Cubes) == 0 {
			continue
		}
		set, err := cube.ParseSet(sh.Cubes...)
		if err != nil {
			return nil, agg, fmt.Errorf("pipeline: shard %d cubes: %w", i, err)
		}
		if set.Width != width {
			return nil, agg, fmt.Errorf("pipeline: shard %d width %d, want %d", i, set.Width, width)
		}
		for _, cb := range set.Cubes {
			merged.Append(cb)
		}
	}
	return merged, agg, nil
}

// Finish runs the back half of the pipeline on a merged cube set: the
// fault-coverage curve, the fill stage and the power stage. Both the
// local Run and the coordinator's shard merger call it, so a sharded
// fleet run and a single-process run produce the identical report (up
// to stage timings) by construction. The agg counters come from
// addStats/MergeShards; stages is the timing prefix accumulated so
// far.
func Finish(ctx context.Context, req Request, c *circuit.Circuit, set *cube.Set, agg ATPGReport, stages []StageTiming, opt RunOptions) (*Report, error) {
	if set.Len() == 0 {
		return nil, fmt.Errorf("pipeline: atpg produced no patterns for %q", c.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	base := req.Shards() + 1 // netlist + shards already done
	seed := req.seed()

	// Resolve the fill-stage algorithms before the (expensive) coverage
	// curve, so a bad name fails fast.
	ordName := req.Orderer
	if ordName == "" {
		ordName = "tool"
	}
	ord, err := order.ByName(ordName, seed)
	if err != nil {
		return nil, badf("%v", err)
	}
	fl, err := ResolveFiller(req.Filler, req.Window, seed)
	if err != nil {
		return nil, badf("%v", err)
	}

	agg.Patterns = set.Len()
	agg.XPercent = set.XPercent()
	if den := agg.Detected + agg.Aborted; den > 0 {
		agg.Coverage = float64(agg.Detected) / float64(den)
	}
	t0 := time.Now()
	curve, err := atpg.CoverageCurve(c, set)
	if err != nil {
		return nil, fmt.Errorf("pipeline: coverage curve: %w", err)
	}
	agg.Curve = make([]CurvePoint, len(curve))
	for i, pt := range curve {
		agg.Curve[i] = CurvePoint(pt)
	}
	if req.IncludeCubes {
		agg.Cubes = cubeStrings(set)
	}
	stages = append(stages, StageTiming{Stage: "curve", DurationMillis: millis(time.Since(t0))})

	// Fill stage: order, reorder, fill, count — the exact sequence the
	// batch engine runs for /v1/fill and /v1/batch.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	perm, err := ord.Order(set)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s ordering: %w", ord.Name(), err)
	}
	reordered := set.Reorder(perm)
	filled, err := fl.Fill(reordered)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %s: %w", fl.Name(), err)
	}
	peak, total, profile := filled.ToggleStats()
	fillRep := &FillReport{
		Orderer:  ord.Name(),
		Filler:   fl.Name(),
		Rows:     set.Len(),
		Width:    set.Width,
		XPercent: set.XPercent(),
		Perm:     perm,
		Peak:     peak,
		Total:    total,
		Profile:  profile,
	}
	if req.IncludeCubes {
		fillRep.Cubes = cubeStrings(filled)
	}
	stages = append(stages, StageTiming{Stage: "fill", DurationMillis: millis(time.Since(t0))})
	opt.progress(base + 1)

	// Power stage: shift toggles, capture power, IR-drop on the filled,
	// applied-order set.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	powRep, err := evalPower(req, c, filled)
	if err != nil {
		return nil, err
	}
	if powRep.StatePreserving {
		powRep.CapturePeakToggles = peak
	}
	stages = append(stages, StageTiming{Stage: "power", DurationMillis: millis(time.Since(t0))})
	opt.progress(base + 2)

	return &Report{
		Name:    reportName(req, c),
		Circuit: Info(c),
		ATPG:    &agg,
		Fill:    fillRep,
		Power:   powRep,
		Stages:  stages,
	}, nil
}

// evalPower runs the evaluation stage on the fully specified set.
func evalPower(req Request, c *circuit.Circuit, filled *cube.Set) (*PowerReport, error) {
	scheme, err := ParseScheme(req.Power.Scheme)
	if err != nil {
		return nil, err
	}
	chains := req.Power.Chains
	if chains == 0 {
		chains = 1
	}
	tiles := req.Power.Tiles
	if tiles == 0 {
		tiles = 4
	}
	plan, err := scan.NewPlan(c, scheme, chains)
	if err != nil {
		return nil, badf("%v", err)
	}
	rep := &PowerReport{
		Scheme:          scheme.String(),
		Chains:          len(plan.Chains),
		ShiftCycles:     plan.ShiftCycles,
		TestCycles:      plan.TestCycles(filled.Len()),
		StatePreserving: plan.StatePreserving(),
	}
	for _, v := range filled.Cubes {
		t, err := plan.ShiftToggleBound(c, v)
		if err != nil {
			return nil, fmt.Errorf("pipeline: shift toggles: %w", err)
		}
		rep.ShiftTotal += t
		if t > rep.ShiftPeak {
			rep.ShiftPeak = t
		}
	}
	if n := filled.Len(); n > 0 {
		rep.ShiftAvg = float64(rep.ShiftTotal) / float64(n)
	}
	model := power.Extract(c, power.Default45nm())
	cr, err := model.CapturePower(filled)
	if err != nil {
		return nil, fmt.Errorf("pipeline: capture power: %w", err)
	}
	rep.CapturePeakUW = cr.PeakUW
	rep.CaptureAvgUW = cr.AvgUW
	rep.PeakCycle = cr.PeakCycle
	ir, err := model.IRDrop(c, filled, tiles)
	if err != nil {
		return nil, fmt.Errorf("pipeline: ir-drop: %w", err)
	}
	rep.IRDrop = &IRDropReport{
		Tiles:        ir.Tiles,
		WorstUA:      ir.WorstUA,
		MeanUA:       ir.MeanUA,
		HotspotRatio: ir.HotspotRatio(),
		PeakTileX:    ir.PeakTileX,
		PeakTileY:    ir.PeakTileY,
		PeakCycle:    ir.PeakCycle,
	}
	return rep, nil
}
