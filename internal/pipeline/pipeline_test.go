package pipeline

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/netgen"
)

// b01 is small (5 inputs, 57 gates) and fully deterministic — the
// workhorse circuit of these tests.
const testSpec = "b01"

func mustRun(t *testing.T, req Request) *Report {
	t.Helper()
	rep, err := Run(context.Background(), req, RunOptions{})
	if err != nil {
		t.Fatalf("Run(%+v): %v", req, err)
	}
	return rep
}

func TestRunFullPipeline(t *testing.T) {
	rep := mustRun(t, Request{Spec: testSpec, IncludeCubes: true})
	if rep.Name != "b01" {
		t.Errorf("report name %q, want b01", rep.Name)
	}
	if rep.Circuit.Width != rep.Circuit.PIs+rep.Circuit.FFs {
		t.Errorf("width %d != pis %d + ffs %d", rep.Circuit.Width, rep.Circuit.PIs, rep.Circuit.FFs)
	}
	if rep.ATPG == nil || rep.Fill == nil || rep.Power == nil {
		t.Fatalf("missing stage reports: %+v", rep)
	}
	if rep.ATPG.Patterns == 0 || rep.ATPG.Patterns != len(rep.ATPG.Cubes) {
		t.Errorf("patterns %d, cubes %d", rep.ATPG.Patterns, len(rep.ATPG.Cubes))
	}
	if rep.ATPG.Coverage <= 0 || rep.ATPG.Coverage > 1 {
		t.Errorf("coverage %v outside (0,1]", rep.ATPG.Coverage)
	}
	if len(rep.ATPG.Curve) == 0 {
		t.Error("missing coverage curve")
	} else if last := rep.ATPG.Curve[len(rep.ATPG.Curve)-1]; last.Patterns != rep.ATPG.Patterns {
		t.Errorf("curve ends at %d patterns, want %d", last.Patterns, rep.ATPG.Patterns)
	}
	if rep.Fill.Filler != "DP-fill" || rep.Fill.Orderer != "Tool" {
		t.Errorf("default algorithms = %q/%q", rep.Fill.Orderer, rep.Fill.Filler)
	}
	if rep.Fill.Rows != rep.ATPG.Patterns {
		t.Errorf("fill rows %d, want %d", rep.Fill.Rows, rep.ATPG.Patterns)
	}
	if len(rep.Fill.Cubes) != rep.Fill.Rows {
		t.Errorf("filled cubes %d, want %d", len(rep.Fill.Cubes), rep.Fill.Rows)
	}
	for _, cb := range rep.Fill.Cubes {
		if strings.ContainsAny(cb, "Xx") {
			t.Fatalf("filled cube still has X: %q", cb)
		}
	}
	if !rep.Power.StatePreserving || rep.Power.Scheme != "LOS" {
		t.Errorf("default scheme = %q (state_preserving=%v), want LOS", rep.Power.Scheme, rep.Power.StatePreserving)
	}
	if rep.Power.CapturePeakToggles != rep.Fill.Peak {
		t.Errorf("capture peak toggles %d != fill peak %d", rep.Power.CapturePeakToggles, rep.Fill.Peak)
	}
	if rep.Power.CapturePeakUW <= 0 || rep.Power.IRDrop == nil || rep.Power.IRDrop.WorstUA <= 0 {
		t.Errorf("power numbers missing: %+v", rep.Power)
	}
	if rep.Power.TestCycles <= 0 || rep.Power.ShiftCycles <= 0 {
		t.Errorf("cycle accounting missing: %+v", rep.Power)
	}
	wantStages := []string{"netlist", "atpg", "curve", "fill", "power"}
	if len(rep.Stages) != len(wantStages) {
		t.Fatalf("stages = %+v, want %v", rep.Stages, wantStages)
	}
	for i, st := range rep.Stages {
		if st.Stage != wantStages[i] {
			t.Errorf("stage[%d] = %q, want %q", i, st.Stage, wantStages[i])
		}
	}
}

// TestDPPeakIsBottleneckBound extends the optimality property suite to
// the pipeline: the DP fill stage's peak must equal the BCP lower
// bound of the ordered ATPG set.
func TestDPPeakIsBottleneckBound(t *testing.T) {
	rep := mustRun(t, Request{Spec: testSpec, IncludeCubes: true})
	set := mustParseCubes(t, rep.ATPG.Cubes)
	bound, err := core.Bottleneck(set)
	if err != nil {
		t.Fatalf("Bottleneck: %v", err)
	}
	if rep.Fill.Peak != bound {
		t.Errorf("DP peak %d != BCP bound %d", rep.Fill.Peak, bound)
	}
}

func TestShardedRunMatchesShardMerge(t *testing.T) {
	req := Request{Spec: "b06", ATPG: ATPGConfig{Shards: 3}, IncludeCubes: true}
	local := mustRun(t, req)

	// Re-run the same request as a coordinator would: one StageATPG
	// request per shard, MergeShards, one Finish.
	c, err := ResolveCircuit(req)
	if err != nil {
		t.Fatal(err)
	}
	var shardReps []*ATPGReport
	for k := 0; k < req.Shards(); k++ {
		sreq := req
		sreq.Stage = StageATPG
		sreq.ShardIndex = k
		rep := mustRun(t, sreq)
		if rep.ATPG == nil || rep.Fill != nil || rep.Power != nil {
			t.Fatalf("shard report shape wrong: %+v", rep)
		}
		shardReps = append(shardReps, rep.ATPG)
	}
	merged, agg, err := MergeShards(c.NumInputs(), shardReps)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Finish(context.Background(), req, c, merged, agg, nil, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	local.ZeroTimings()
	remote.ZeroTimings()
	remote.Stages = nil
	local.Stages = nil
	a, _ := json.Marshal(local)
	b, _ := json.Marshal(remote)
	if string(a) != string(b) {
		t.Errorf("sharded-merge report differs from local run:\nlocal:  %s\nmerged: %s", a, b)
	}
}

func TestShardUnionCoversUnshardedFaultList(t *testing.T) {
	req := Request{Spec: testSpec, ATPG: ATPGConfig{Shards: 4}}
	rep := mustRun(t, req)
	single := mustRun(t, Request{Spec: testSpec})
	if rep.ATPG.TotalFaults != single.ATPG.TotalFaults {
		t.Errorf("sharded fault total %d != unsharded %d", rep.ATPG.TotalFaults, single.ATPG.TotalFaults)
	}
	if rep.ATPG.Shards != 4 {
		t.Errorf("shards = %d, want 4", rep.ATPG.Shards)
	}
	if rep.ATPG.Patterns == 0 {
		t.Error("sharded run produced no patterns")
	}
}

func TestNetlistInputMatchesSpec(t *testing.T) {
	p, _ := netgen.ProfileByName(testSpec)
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := circuit.WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	// WriteBench keeps the design name only as a comment, so pin the
	// report name via the request and compare everything else.
	fromNetlist := mustRun(t, Request{Name: "b01", Netlist: sb.String(), IncludeCubes: true})
	fromSpec := mustRun(t, Request{Name: "b01", Spec: testSpec, IncludeCubes: true})
	fromNetlist.ZeroTimings()
	fromSpec.ZeroTimings()
	fromNetlist.Circuit.Name = ""
	fromSpec.Circuit.Name = ""
	a, _ := json.Marshal(fromNetlist)
	b, _ := json.Marshal(fromSpec)
	if string(a) != string(b) {
		t.Errorf("netlist-text run differs from spec run:\n%s\n%s", a, b)
	}
}

func TestProgressReachesSteps(t *testing.T) {
	req := Request{Spec: testSpec, ATPG: ATPGConfig{Shards: 2}}
	var got []int
	_, err := Run(context.Background(), req, RunOptions{Progress: func(done int) { got = append(got, done) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[len(got)-1] != req.Steps() {
		t.Errorf("progress %v, want monotone ending at %d", got, req.Steps())
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("progress not monotone: %v", got)
		}
	}
}

func TestRunOptionsAndSchemes(t *testing.T) {
	loc := mustRun(t, Request{Spec: testSpec, Power: PowerConfig{Scheme: "loc", Chains: 2, Tiles: 3}})
	if loc.Power.Scheme != "LOC" || loc.Power.StatePreserving {
		t.Errorf("LOC plan misreported: %+v", loc.Power)
	}
	if loc.Power.CapturePeakToggles != 0 {
		t.Errorf("LOC must not report capture toggles (model undefined), got %d", loc.Power.CapturePeakToggles)
	}
	if loc.Power.IRDrop.Tiles != 3 {
		t.Errorf("tiles = %d, want 3", loc.Power.IRDrop.Tiles)
	}
	if loc.Power.Chains != 2 {
		t.Errorf("chains = %d, want 2", loc.Power.Chains)
	}

	win := mustRun(t, Request{Spec: testSpec, Window: 8})
	if win.Fill.Filler != "DP-fill(w8)" {
		t.Errorf("windowed filler = %q", win.Fill.Filler)
	}
	mt := mustRun(t, Request{Spec: testSpec, Filler: "mt", Orderer: "xstat"})
	if mt.Fill.Filler != "MT-fill" || mt.Fill.Orderer != "X-Stat" {
		t.Errorf("algorithms = %q/%q", mt.Fill.Orderer, mt.Fill.Filler)
	}
}

func TestMaxGatesLimit(t *testing.T) {
	_, err := Run(context.Background(), Request{Spec: "b04"}, RunOptions{MaxGates: 10})
	if err == nil || !isBadRequest(err) {
		t.Errorf("want ErrBadRequest for over-limit circuit, got %v", err)
	}
}

func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Request{Spec: testSpec, ATPG: ATPGConfig{Shards: 2}}, RunOptions{}); err == nil {
		t.Error("want error from cancelled context")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []Request{
		{},
		{Spec: "b01", Netlist: "INPUT(a)"},
		{Spec: "b01", Stage: "fill"},
		{Spec: "b01", ATPG: ATPGConfig{Shards: -1}},
		{Spec: "b01", ATPG: ATPGConfig{Shards: MaxShards + 1}},
		{Spec: "b01", Stage: StageATPG, ShardIndex: 1},
		{Spec: "b01", ShardIndex: 2},
		{Spec: "b01", Power: PowerConfig{Scheme: "bist"}},
		{Spec: "b01", Power: PowerConfig{Chains: -1}},
		{Spec: "b01", Power: PowerConfig{Tiles: -1}},
	}
	for _, req := range cases {
		if err := req.Validate(); err == nil || !isBadRequest(err) {
			t.Errorf("Validate(%+v): want ErrBadRequest, got %v", req, err)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	cases := []Request{
		{Spec: "nosuch"},
		{Netlist: "not a netlist ((("},
		{Netlist: "OUTPUT(g)\ng = AND(a, b)"}, // undeclared nets
		{Spec: "b01", Filler: "nosuch"},
		{Spec: "b01", Orderer: "nosuch"},
		{Spec: "b01", Window: 1},
		{Spec: "b01", Filler: "mt", Window: 4},
	}
	for _, req := range cases {
		_, err := Run(context.Background(), req, RunOptions{})
		if err == nil || !isBadRequest(err) {
			t.Errorf("Run(%+v): want ErrBadRequest, got %v", req, err)
		}
	}
}

func TestMergeShardsErrors(t *testing.T) {
	if _, _, err := MergeShards(5, []*ATPGReport{nil}); err == nil {
		t.Error("nil shard report: want error")
	}
	if _, _, err := MergeShards(5, []*ATPGReport{{Cubes: []string{"0X1"}}}); err == nil {
		t.Error("width mismatch: want error")
	}
	if _, _, err := MergeShards(3, []*ATPGReport{{Cubes: []string{"0@1"}}}); err == nil {
		t.Error("bad cube text: want error")
	}
	set, agg, err := MergeShards(3, []*ATPGReport{
		{Cubes: []string{"0X1"}, Detected: 2},
		{Cubes: nil, Untestable: 1},
		{Cubes: []string{"1X0", "X01"}, Detected: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 || agg.Detected != 5 || agg.Untestable != 1 || agg.Shards != 3 {
		t.Errorf("merge = len %d, %+v", set.Len(), agg)
	}
}

func TestFinishEmptySet(t *testing.T) {
	req := Request{Spec: testSpec}
	c, err := ResolveCircuit(req)
	if err != nil {
		t.Fatal(err)
	}
	merged, agg, err := MergeShards(c.NumInputs(), []*ATPGReport{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Finish(context.Background(), req, c, merged, agg, nil, RunOptions{}); err == nil {
		t.Error("empty merged set: want error")
	}
}

func TestStepsAccounting(t *testing.T) {
	if got := (Request{Spec: "x"}).Steps(); got != 4 {
		t.Errorf("unsharded steps = %d, want 4", got)
	}
	if got := (Request{Spec: "x", ATPG: ATPGConfig{Shards: 5}}).Steps(); got != 8 {
		t.Errorf("5-shard steps = %d, want 8", got)
	}
	if got := (Request{Spec: "x", Stage: StageATPG}).Steps(); got != 2 {
		t.Errorf("shard-stage steps = %d, want 2", got)
	}
}

func TestParseScheme(t *testing.T) {
	for _, name := range []string{"", "los", "LOS"} {
		if s, err := ParseScheme(name); err != nil || s.String() != "LOS" {
			t.Errorf("ParseScheme(%q) = %v, %v", name, s, err)
		}
	}
	if s, err := ParseScheme("LoC"); err != nil || s.String() != "LOC" {
		t.Errorf("ParseScheme(LoC) = %v, %v", s, err)
	}
}
