package pipeline

import (
	"errors"
	"testing"

	"repro/internal/cube"
)

func isBadRequest(err error) bool { return errors.Is(err, ErrBadRequest) }

func mustParseCubes(t *testing.T, cubes []string) *cube.Set {
	t.Helper()
	set, err := cube.ParseSet(cubes...)
	if err != nil {
		t.Fatalf("parsing cubes: %v", err)
	}
	return set
}
