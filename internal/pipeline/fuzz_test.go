package pipeline

import (
	"strings"
	"testing"

	"repro/internal/circuit"
)

// FuzzParseNetlist pins the pipeline's inline-netlist ingress: no
// panic on arbitrary text, and every accepted circuit satisfies the
// invariants the later stages rely on (at least one scan input, a
// round-trippable netlist).
func FuzzParseNetlist(f *testing.F) {
	seeds := []string{
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
		"# b\nINPUT(a)\nq = DFF(d)\nd = NOT(q)\nOUTPUT(q)\n",
		"INPUT(x)\nOUTPUT(x)\n",
		"y = NAND(a, b)",
		"",
		"INPUT(a)\n\n# comment\ny = BUFF(a)\nOUTPUT(y)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		c, err := ParseNetlist(text)
		if err != nil {
			if !isBadRequest(err) {
				t.Fatalf("ParseNetlist error not ErrBadRequest: %v", err)
			}
			return
		}
		if c.NumInputs() < 1 {
			t.Fatalf("accepted netlist with no scan inputs: %q", text)
		}
		// The accepted circuit must survive a write/re-parse round trip.
		var sb strings.Builder
		if err := circuit.WriteBench(&sb, c); err != nil {
			t.Fatalf("WriteBench on accepted netlist: %v", err)
		}
		c2, err := ParseNetlist(sb.String())
		if err != nil {
			t.Fatalf("round-trip rejected: %v\noriginal: %q\nwritten: %q", err, text, sb.String())
		}
		if c2.NumInputs() != c.NumInputs() || len(c2.Gates) != len(c.Gates) {
			t.Fatalf("round trip changed shape: %d/%d inputs, %d/%d gates",
				c.NumInputs(), c2.NumInputs(), len(c.Gates), len(c2.Gates))
		}
	})
}
