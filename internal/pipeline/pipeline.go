// Package pipeline runs the paper's full experimental loop as one
// staged workload: netlist in (inline .bench text or a netgen spec),
// ATPG with static compaction, DP-fill (or any registered
// filler/orderer) on the extracted cubes, and per-pattern power
// evaluation — shift toggles, capture power under LOS/LOC, IR-drop —
// out as a typed report with per-stage timings and a fault-coverage
// curve.
//
// The package is serving-layer agnostic: internal/server exposes it as
// POST /v1/pipeline (sync and async), internal/cluster shards its ATPG
// stage across a fleet, and cmd/dpfill drives it from the CLI. To make
// a sharded run mergeable, ATPG accepts a fault-partition index
// (Request.Stage == StageATPG + ShardIndex): shard k of K targets the
// k-th contiguous slice of the collapsed fault list, and the merged,
// order-preserved union of the K shard cube sets feeds one Finish call
// — the identical code path a single-process run takes, which is what
// makes coordinator results byte-identical to local ones.
package pipeline

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fill"
	"repro/internal/netgen"
	"repro/internal/scan"
)

// StageATPG marks a request that runs only one ATPG fault shard and
// returns its cubes, for coordinator fan-out.
const StageATPG = "atpg"

// MaxShards bounds the ATPG fault partitioning.
const MaxShards = 64

// ErrBadRequest wraps every validation failure of a Request — bad
// netlist text, unknown algorithm names, out-of-range shard indices —
// so serving layers can answer 400 instead of 422.
var ErrBadRequest = errors.New("pipeline: bad request")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Request is one pipeline invocation. Exactly one of Netlist and Spec
// names the circuit.
type Request struct {
	// Name labels the run in reports and logs; defaults to the resolved
	// circuit name.
	Name string `json:"name,omitempty"`
	// Netlist is inline .bench netlist text (the ISCAS-89/ITC-99
	// exchange format internal/circuit speaks).
	Netlist string `json:"netlist,omitempty"`
	// Spec is a netgen circuit spec: a catalog name ("b04"), a scaled
	// catalog name ("b04@0.25"), or a custom profile
	// ("pis=8,ffs=24,gates=200[,seed=7][,name=x]").
	Spec string `json:"spec,omitempty"`
	// Stage, when StageATPG, runs only fault shard ShardIndex and
	// returns its cubes — the coordinator fan-out unit. Empty runs the
	// whole pipeline.
	Stage string `json:"stage,omitempty"`
	// ShardIndex selects the fault shard when Stage == StageATPG.
	ShardIndex int `json:"shard_index,omitempty"`
	// ATPG tunes pattern generation.
	ATPG ATPGConfig `json:"atpg,omitzero"`
	// Orderer and Filler name the fill-stage algorithms (tool and dp by
	// default), with the same spellings as /v1/fill.
	Orderer string `json:"orderer,omitempty"`
	Filler  string `json:"filler,omitempty"`
	// Window, when >= 2, selects the streaming windowed DP-fill.
	Window int `json:"window,omitempty"`
	// Seed fixes the randomized algorithms (R-fill, ISA, fault
	// sampling). Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Power tunes the evaluation stage.
	Power PowerConfig `json:"power,omitzero"`
	// IncludeCubes carries the ATPG cubes and the filled set in the
	// report (shard-stage responses always carry their cubes).
	IncludeCubes bool `json:"include_cubes,omitempty"`
	// TimeoutMillis bounds the run's wall-clock time; serving layers
	// clamp it against their configured ceiling.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// ATPGConfig tunes the generation stage; the zero value uses the
// atpg package defaults with a single fault shard.
type ATPGConfig struct {
	// BacktrackLimit bounds PODEM backtracks per fault (default 120).
	BacktrackLimit int `json:"backtrack_limit,omitempty"`
	// MaxFaults samples the collapsed fault list down to this size.
	MaxFaults int `json:"max_faults,omitempty"`
	// MaxPatterns stops generation after this many cubes per shard.
	MaxPatterns int `json:"max_patterns,omitempty"`
	// NoCompact disables greedy static compaction.
	NoCompact bool `json:"no_compact,omitempty"`
	// Shards fault-partitions the run into this many independent ATPG
	// shards (1..MaxShards; default 1). A coordinator fans the shards
	// across its fleet; a local run executes them in order. Either way
	// the merged cube set is identical.
	Shards int `json:"shards,omitempty"`
}

// PowerConfig tunes the evaluation stage.
type PowerConfig struct {
	// Scheme is the at-speed launch style: "los" (default) or "loc".
	// Only LOS is state-preserving, so capture-toggle accounting (the
	// paper's objective) is reported for LOS alone; the simulated
	// capture power and IR-drop are reported for both.
	Scheme string `json:"scheme,omitempty"`
	// Chains is the scan chain count (default 1; clamped to the FF
	// count).
	Chains int `json:"chains,omitempty"`
	// Tiles is the IR-drop grid side length (default 4).
	Tiles int `json:"tiles,omitempty"`
}

// Shards returns the resolved ATPG shard count (>= 1).
func (r Request) Shards() int {
	if r.ATPG.Shards < 1 {
		return 1
	}
	return r.ATPG.Shards
}

// Steps returns the progress-step total of a run: the netlist stage,
// one step per ATPG shard, the fill stage and the power stage. Serving
// layers report async progress against this total.
func (r Request) Steps() int {
	if r.Stage == StageATPG {
		return 2 // netlist + one shard
	}
	return r.Shards() + 3
}

// Validate checks the request's structure: circuit source, stage,
// shard bounds and power knobs. Algorithm names are resolved (and
// rejected) by Run/Finish, which also wrap those failures in
// ErrBadRequest.
func (r Request) Validate() error {
	switch {
	case r.Netlist != "" && r.Spec != "":
		return badf("request carries both netlist and spec; send one")
	case r.Netlist == "" && r.Spec == "":
		return badf("request carries no circuit: set netlist or spec")
	}
	if r.Stage != "" && r.Stage != StageATPG {
		return badf("unknown stage %q (want empty or %q)", r.Stage, StageATPG)
	}
	if r.ATPG.Shards < 0 || r.ATPG.Shards > MaxShards {
		return badf("atpg shards %d outside [0,%d]", r.ATPG.Shards, MaxShards)
	}
	if r.Stage == StageATPG {
		if r.ShardIndex < 0 || r.ShardIndex >= r.Shards() {
			return badf("shard index %d outside [0,%d)", r.ShardIndex, r.Shards())
		}
	} else if r.ShardIndex != 0 {
		return badf("shard_index is only valid with stage %q", StageATPG)
	}
	if _, err := ParseScheme(r.Power.Scheme); err != nil {
		return err
	}
	if r.Power.Chains < 0 {
		return badf("power chains %d < 0", r.Power.Chains)
	}
	if r.Power.Tiles < 0 {
		return badf("power tiles %d < 0", r.Power.Tiles)
	}
	return nil
}

// ParseScheme resolves a scheme name; empty means LOS.
func ParseScheme(name string) (scan.Scheme, error) {
	switch strings.ToLower(name) {
	case "", "los":
		return scan.LOS, nil
	case "loc":
		return scan.LOC, nil
	default:
		return 0, badf("unknown scan scheme %q (want los or loc)", name)
	}
}

// ParseNetlist parses inline .bench netlist text into a circuit and
// requires it to be testable in principle (at least one scan input).
// It is the fuzzed ingress of the pipeline endpoint.
func ParseNetlist(text string) (*circuit.Circuit, error) {
	c, err := circuit.ParseBench(strings.NewReader(text))
	if err != nil {
		return nil, badf("parsing netlist: %v", err)
	}
	if c.NumInputs() < 1 {
		return nil, badf("netlist %q has no primary inputs or flip-flops", c.Name)
	}
	return c, nil
}

// ResolveCircuit resolves the request's circuit source: inline netlist
// text or a generated netgen spec.
func ResolveCircuit(req Request) (*circuit.Circuit, error) {
	if req.Netlist != "" {
		return ParseNetlist(req.Netlist)
	}
	p, err := netgen.ParseSpec(req.Spec)
	if err != nil {
		return nil, badf("%v", err)
	}
	c, err := netgen.Generate(p)
	if err != nil {
		return nil, badf("%v", err)
	}
	return c, nil
}

// ResolveFiller resolves a fill-stage filler name exactly the way the
// fill service does: empty means DP-fill, DP is pinned to one core
// shard (the serving layer is the concurrency layer), and a window
// >= 2 selects the streaming windowed DP-fill under its distinct name.
// Sharing this resolution is what keeps the pipeline's fill stage
// byte-identical to /v1/fill and /v1/batch for the same cubes.
func ResolveFiller(name string, window int, seed int64) (fill.Filler, error) {
	if name == "" {
		name = "dp"
	}
	fl, err := fill.ByNameSerial(name, seed)
	if err != nil {
		return nil, err
	}
	if window == 0 {
		return fl, nil
	}
	if window < 2 {
		return nil, fmt.Errorf("window %d: must be >= 2", window)
	}
	if fl.Name() != "DP-fill" {
		return nil, fmt.Errorf("window is only valid with the dp filler, not %q", name)
	}
	return fill.DPWindowed(window, core.Options{Shards: 1}), nil
}
