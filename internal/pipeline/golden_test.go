package pipeline

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden pipeline reports")

// goldenCases pin the full report shape — ATPG counters, fill
// statistics, power and IR-drop numbers — for three small circuits.
// Report-shape or power-model drift fails here instead of shipping
// silently; intentional changes regenerate with
// go test ./internal/pipeline -run TestGolden -update.
var goldenCases = []struct {
	file string
	req  Request
}{
	{"b01_default.json", Request{Spec: "b01", IncludeCubes: true}},
	{"b02_sharded_loc.json", Request{Spec: "b02", ATPG: ATPGConfig{Shards: 2},
		Power: PowerConfig{Scheme: "loc", Chains: 2, Tiles: 2}}},
	{"b06_windowed.json", Request{Spec: "b06", Orderer: "xstat", Window: 8,
		Power: PowerConfig{Chains: 3}}},
}

func TestGoldenReports(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.file, func(t *testing.T) {
			rep, err := Run(context.Background(), tc.req, RunOptions{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			// Timings are measurements, not results.
			rep.ZeroTimings()
			got, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "pipeline", tc.file)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}
		})
	}
}
