package pipeline

// Report is the typed result of one pipeline run. Every field except
// the stage timings is deterministic for a given request, which is the
// contract the golden-report and coordinator byte-identity suites pin.
type Report struct {
	// Name labels the run (the request name, defaulting to the circuit
	// name).
	Name string `json:"name,omitempty"`
	// Circuit summarizes the resolved netlist.
	Circuit CircuitInfo `json:"circuit"`
	// ATPG reports the generation stage (one shard for StageATPG
	// requests, the merged whole otherwise).
	ATPG *ATPGReport `json:"atpg,omitempty"`
	// Fill and Power report the later stages; absent on StageATPG
	// responses.
	Fill  *FillReport  `json:"fill,omitempty"`
	Power *PowerReport `json:"power,omitempty"`
	// Stages holds per-stage wall-clock timings in execution order.
	// Timings are measurements, not results: differential suites zero
	// them before comparing reports.
	Stages []StageTiming `json:"stages,omitempty"`
}

// CircuitInfo summarizes a resolved netlist.
type CircuitInfo struct {
	Name string `json:"name"`
	// PIs and FFs count primary inputs and flip-flops; Width is their
	// sum, the test cube width.
	PIs   int `json:"pis"`
	FFs   int `json:"ffs"`
	Width int `json:"width"`
	// Gates counts combinational logic gates; POs primary outputs.
	Gates int `json:"gates"`
	POs   int `json:"pos"`
}

// ATPGReport is the generation-stage summary. For sharded runs the
// counters are sums over the shards and Patterns counts the merged
// set.
type ATPGReport struct {
	TotalFaults  int     `json:"total_faults"`
	Detected     int     `json:"detected"`
	Untestable   int     `json:"untestable"`
	Aborted      int     `json:"aborted"`
	DroppedBySim int     `json:"dropped_by_sim"`
	Merged       int     `json:"merged"`
	Patterns     int     `json:"patterns"`
	Coverage     float64 `json:"coverage"`
	// Shards is the fault-partition count the run used.
	Shards int `json:"shards"`
	// XPercent is the don't-care density of the emitted cubes.
	XPercent float64 `json:"x_percent"`
	// Curve is the cumulative fault-coverage curve over the merged set
	// (absent on shard responses; the merger computes it once).
	Curve []CurvePoint `json:"curve,omitempty"`
	// Cubes is the emitted test cube matrix. Shard responses always
	// carry it (it is the merge payload); full runs only with
	// include_cubes.
	Cubes []string `json:"cubes,omitempty"`
}

// CurvePoint is one point of the fault-coverage curve.
type CurvePoint struct {
	Patterns int     `json:"patterns"`
	Detected int     `json:"detected"`
	Coverage float64 `json:"coverage"`
}

// FillReport is the fill-stage summary, mirroring the /v1/fill
// response for the same cubes.
type FillReport struct {
	Orderer  string  `json:"orderer"`
	Filler   string  `json:"filler"`
	Rows     int     `json:"rows"`
	Width    int     `json:"width"`
	XPercent float64 `json:"x_percent"`
	// Perm is the applied ordering permutation.
	Perm []int `json:"perm,omitempty"`
	// Peak and Total are the toggle statistics of the filled set;
	// Profile the per-cycle toggle counts.
	Peak    int   `json:"peak"`
	Total   int   `json:"total"`
	Profile []int `json:"profile,omitempty"`
	// Cubes is the fully specified output (include_cubes only).
	Cubes []string `json:"cubes,omitempty"`
}

// PowerReport is the evaluation-stage summary.
type PowerReport struct {
	// Scheme and Chains echo the resolved plan; ShiftCycles is the
	// longest chain, TestCycles the total tester cycles for the set.
	Scheme      string `json:"scheme"`
	Chains      int    `json:"chains"`
	ShiftCycles int    `json:"shift_cycles"`
	TestCycles  int    `json:"test_cycles"`
	// StatePreserving reports whether the inter-vector Hamming model
	// (the paper's objective) applies — true under LOS only.
	StatePreserving bool `json:"state_preserving"`
	// ShiftPeak/ShiftTotal/ShiftAvg summarize per-pattern scan-cell
	// toggles while shifting.
	ShiftPeak  int     `json:"shift_peak"`
	ShiftTotal int     `json:"shift_total"`
	ShiftAvg   float64 `json:"shift_avg"`
	// CapturePeakToggles is the peak inter-vector input toggle count —
	// the quantity DP-fill minimizes. LOS only (zero under LOC, where
	// the model is undefined).
	CapturePeakToggles int `json:"capture_peak_toggles,omitempty"`
	// CapturePeakUW/CaptureAvgUW/PeakCycle summarize simulated weighted
	// switching power per capture cycle.
	CapturePeakUW float64 `json:"capture_peak_uw"`
	CaptureAvgUW  float64 `json:"capture_avg_uw"`
	PeakCycle     int     `json:"peak_cycle"`
	// IRDrop is the per-tile peak current summary.
	IRDrop *IRDropReport `json:"ir_drop,omitempty"`
}

// IRDropReport summarizes the per-tile peak current map.
type IRDropReport struct {
	Tiles        int     `json:"tiles"`
	WorstUA      float64 `json:"worst_ua"`
	MeanUA       float64 `json:"mean_ua"`
	HotspotRatio float64 `json:"hotspot_ratio"`
	PeakTileX    int     `json:"peak_tile_x"`
	PeakTileY    int     `json:"peak_tile_y"`
	PeakCycle    int     `json:"peak_cycle"`
}

// StageTiming is one stage's wall-clock measurement.
type StageTiming struct {
	Stage          string  `json:"stage"`
	DurationMillis float64 `json:"duration_ms"`
}

// ZeroTimings clears the report's stage durations in place (keeping
// the stage sequence), for deterministic comparison in tests.
func (r *Report) ZeroTimings() {
	for i := range r.Stages {
		r.Stages[i].DurationMillis = 0
	}
}
