package pipeline

import (
	"context"
	"testing"
)

// The pipeline benchmarks feed the BENCH_*.json trajectory: the full
// netlist→ATPG→fill→power loop on catalog circuits, unsharded and
// fault-sharded.

func benchRun(b *testing.B, req Request) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), req, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineB06(b *testing.B) {
	benchRun(b, Request{Spec: "b06"})
}

func BenchmarkPipelineB09Scaled(b *testing.B) {
	benchRun(b, Request{Spec: "b09@0.5"})
}

func BenchmarkPipelineSharded4(b *testing.B) {
	benchRun(b, Request{Spec: "b06", ATPG: ATPGConfig{Shards: 4}})
}

func BenchmarkPipelineWindowed(b *testing.B) {
	benchRun(b, Request{Spec: "b06", Window: 8})
}
