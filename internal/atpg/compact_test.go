package atpg

import (
	"testing"

	"repro/internal/cube"
	"repro/internal/logicsim"
	"repro/internal/netgen"
)

// TestGenerateDetectionSound is the compaction soundness check: every
// fault Generate reports as detected must be detected by at least one
// emitted cube according to the independent dual-rail fault simulator —
// even though compaction merged cubes after their targets were
// recorded (merging adds care bits, and detection under X is monotone
// in specification, so this must hold).
func TestGenerateDetectionSound(t *testing.T) {
	p, _ := netgen.ProfileByName("b03")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	set, stats, err := Generate(c, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Merged == 0 {
		t.Fatal("compaction did not merge anything; test is vacuous")
	}
	faults := Collapse(c, AllFaults(c))
	faults = Sample(faults, 0, 2)
	fs := NewFaultSim(logicsim.Compile(c))

	// Batch fault simulation over the emitted set.
	detected := make([]bool, len(faults))
	for base := 0; base < set.Len(); base += 64 {
		hi := base + 64
		if hi > set.Len() {
			hi = set.Len()
		}
		if err := fs.ApplyBatch(set.Cubes[base:hi]); err != nil {
			t.Fatal(err)
		}
		for fi := range faults {
			if !detected[fi] && fs.Detects(faults[fi]) != 0 {
				detected[fi] = true
			}
		}
	}
	count := 0
	for _, d := range detected {
		if d {
			count++
		}
	}
	if count < stats.Detected {
		t.Fatalf("Generate claims %d detected but the emitted set only detects %d",
			stats.Detected, count)
	}
}

// TestNoCompactDisablesMerging checks the option plumbing and that
// disabling compaction yields at least as many (typically more)
// patterns.
func TestNoCompactDisablesMerging(t *testing.T) {
	p, _ := netgen.ProfileByName("b03")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	with, sWith, err := Generate(c, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sWith.Merged == 0 {
		t.Fatal("default run merged nothing; compaction broken")
	}
	without, sWithout, err := Generate(c, Options{Seed: 2, NoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	if sWithout.Merged != 0 {
		t.Fatalf("NoCompact still merged %d", sWithout.Merged)
	}
	if without.Len() < with.Len() {
		t.Fatalf("compaction increased pattern count: %d -> %d", without.Len(), with.Len())
	}
	if with.XPercent() >= without.XPercent() {
		t.Logf("note: compaction usually lowers X%% (got %.1f vs %.1f)",
			with.XPercent(), without.XPercent())
	}
}

// TestMergedPatternsRespectCareBits: merged patterns must remain
// supersets of the constituent PODEM cubes' care bits; spot-check via
// cube compatibility of each emitted pattern with itself (fully
// self-consistent) and X accounting.
func TestMergedPatternsRespectCareBits(t *testing.T) {
	p, _ := netgen.ProfileByName("b01")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := Generate(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, cb := range set.Cubes {
		if len(cb) != c.NumInputs() {
			t.Fatalf("pattern %d has width %d", i, len(cb))
		}
		for _, tr := range cb {
			if tr != cube.Zero && tr != cube.One && tr != cube.X {
				t.Fatalf("pattern %d holds invalid trit %d", i, tr)
			}
		}
	}
}
