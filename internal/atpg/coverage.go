package atpg

import (
	"repro/internal/circuit"
	"repro/internal/cube"
	"repro/internal/logicsim"
)

// CoveragePoint is one point of a fault-coverage curve.
type CoveragePoint struct {
	// Patterns is the number of patterns applied so far.
	Patterns int
	// Detected is the cumulative number of detected faults.
	Detected int
	// Coverage is Detected over the fault-list size.
	Coverage float64
}

// CoverageCurve fault-simulates the ordered set against the full
// collapsed fault list and returns the cumulative coverage after every
// 64-pattern batch (plus a final point at the exact pattern count).
// The classic ATPG report: steep early (easy faults, dense patterns),
// long tail — and the independent-of-Generate way to audit a pattern
// set, whether it came from this package, a cache file or another tool.
func CoverageCurve(c *circuit.Circuit, set *cube.Set) ([]CoveragePoint, error) {
	faults := Collapse(c, AllFaults(c))
	fs := NewFaultSim(logicsim.Compile(c))
	detected := make([]bool, len(faults))
	count := 0
	var curve []CoveragePoint
	pr := cube.PackRows(set) // one pack; every batch loads from the planes
	for base := 0; base < set.Len(); base += 64 {
		hi := base + 64
		if hi > set.Len() {
			hi = set.Len()
		}
		if err := fs.ApplyPackedRows(pr, base); err != nil {
			return nil, err
		}
		for fi := range faults {
			if !detected[fi] && fs.Detects(faults[fi]) != 0 {
				detected[fi] = true
				count++
			}
		}
		curve = append(curve, CoveragePoint{
			Patterns: hi,
			Detected: count,
			Coverage: float64(count) / float64(len(faults)),
		})
	}
	return curve, nil
}
