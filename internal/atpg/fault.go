// Package atpg implements the test-generation substrate the paper's
// experiments depend on: stuck-at fault modeling, a PODEM test-pattern
// generator that emits genuinely partial test cubes (unassigned inputs
// stay X, which is what makes X-filling worthwhile), and a three-valued
// pattern-parallel fault simulator used for fault dropping.
//
// The paper used TetraMax on the ITC'99 circuits; this package plays
// that role on the netgen-generated profile-matched netlists (see
// DESIGN.md substitutions). The "tool ordering" of Table II is the
// order patterns are generated in.
package atpg

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/circuit"
	"repro/internal/cube"
)

// Fault is a single stuck-at fault on a net (a gate output stem).
type Fault struct {
	// Net is the gate ID whose output is faulty.
	Net int
	// Stuck is the stuck-at value, cube.Zero or cube.One.
	Stuck cube.Trit
}

// String renders the fault in the conventional "net/sa0" form.
func (f Fault) String() string {
	v := 0
	if f.Stuck == cube.One {
		v = 1
	}
	return fmt.Sprintf("%d/sa%d", f.Net, v)
}

// AllFaults returns the uncollapsed stem fault list: stuck-at-0 and
// stuck-at-1 on every net (gate outputs, primary inputs and flip-flop
// outputs). Constant gates only get the detectable polarity.
func AllFaults(c *circuit.Circuit) []Fault {
	out := make([]Fault, 0, 2*len(c.Gates))
	for i := range c.Gates {
		switch c.Gates[i].Type {
		case circuit.Const0:
			out = append(out, Fault{Net: i, Stuck: cube.One})
		case circuit.Const1:
			out = append(out, Fault{Net: i, Stuck: cube.Zero})
		default:
			out = append(out, Fault{Net: i, Stuck: cube.Zero}, Fault{Net: i, Stuck: cube.One})
		}
	}
	return out
}

// Collapse applies structural equivalence collapsing for inverter and
// buffer chains: a fault on a BUF output is equivalent to the same
// fault on its fanin; a fault on a NOT output is equivalent to the
// opposite fault on its fanin. Each equivalence class keeps one
// representative (the most upstream), shrinking the fault list without
// changing coverage.
func Collapse(c *circuit.Circuit, faults []Fault) []Fault {
	canon := func(f Fault) Fault {
		for {
			g := &c.Gates[f.Net]
			switch g.Type {
			case circuit.Buf:
				f.Net = g.Fanin[0]
			case circuit.Not:
				f.Net = g.Fanin[0]
				f.Stuck = f.Stuck.Neg()
			default:
				return f
			}
		}
	}
	seen := make(map[Fault]bool, len(faults))
	out := make([]Fault, 0, len(faults))
	for _, f := range faults {
		cf := canon(f)
		if !seen[cf] {
			seen[cf] = true
			out = append(out, cf)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Net != out[j].Net {
			return out[i].Net < out[j].Net
		}
		return out[i].Stuck < out[j].Stuck
	})
	return out
}

// Sample returns up to max faults drawn uniformly without replacement
// (deterministic for a given seed), or the input unchanged if max <= 0
// or the list is already small enough. Large-circuit experiment runs
// sample the fault list; see DESIGN.md for why this preserves cube
// geometry.
func Sample(faults []Fault, max int, seed int64) []Fault {
	if max <= 0 || len(faults) <= max {
		return faults
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(len(faults))[:max]
	sort.Ints(idx)
	out := make([]Fault, max)
	for i, k := range idx {
		out[i] = faults[k]
	}
	return out
}
