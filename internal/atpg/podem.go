package atpg

import (
	"repro/internal/circuit"
	"repro/internal/cube"
)

// podem runs path-oriented decision making for one target fault and
// returns a test cube over the scan inputs (unassigned inputs remain X),
// or ok=false if the fault was proven untestable or the backtrack limit
// was exceeded.
//
// The engine is region-limited: only the transitive fanin of the
// observables reachable from the fault net is simulated, and only scan
// inputs inside that region are decision candidates. Everything outside
// the region stays X in the emitted cube — the structural reason ATPG
// cubes are X-dominated (Table I).
type podem struct {
	c *circuit.Circuit
	// scanIndex maps gate ID -> cube pin index for scan inputs, -1
	// otherwise.
	scanIndex []int

	// Region state (epoch-stamped, reused across faults).
	inRegion    []int
	regionEpoch int
	regionTopo  []int // region gates in global topo order
	regionPIs   []int // scan inputs inside the region

	// Dual-machine 3-valued values.
	good, faulty []cube.Trit

	// assignment[pin] is the current decision value for scan pin, X if
	// unassigned.
	assignment []cube.Trit

	observable []bool

	// scratch for region construction
	markFwd []int
	fwdList []int
	bwdList []int

	// Event-driven propagation state: level-bucketed worklist, reused
	// across calls via qEpoch stamps.
	qBuckets [][]int
	qDirty   []int
	inQueue  []int
	qEpoch   int
}

func newPodem(c *circuit.Circuit) *podem {
	n := len(c.Gates)
	p := &podem{
		c:          c,
		scanIndex:  make([]int, n),
		inRegion:   make([]int, n),
		good:       make([]cube.Trit, n),
		faulty:     make([]cube.Trit, n),
		observable: make([]bool, n),
		markFwd:    make([]int, n),
	}
	for i := range p.scanIndex {
		p.scanIndex[i] = -1
	}
	scan := c.ScanInputs()
	p.assignment = make([]cube.Trit, len(scan))
	for k, id := range scan {
		p.scanIndex[id] = k
	}
	for _, id := range c.ScanOutputs() {
		p.observable[id] = true
	}
	p.qBuckets = make([][]int, c.Depth()+1)
	p.inQueue = make([]int, n)
	return p
}

// propagate event-drives a single source-value change (assign, flip or
// unassign at scan pin gate src) through the region: only gates whose
// value actually changes are re-evaluated downstream. Level-ascending
// sweep guarantees each affected gate is evaluated once, after all its
// changed fanins.
func (p *podem) propagate(f Fault, src int) {
	c := p.c
	ep := p.regionEpoch
	p.qEpoch++
	for _, l := range p.qDirty {
		p.qBuckets[l] = p.qBuckets[l][:0]
	}
	p.qDirty = p.qDirty[:0]
	push := func(id int) {
		if p.inQueue[id] == p.qEpoch || p.inRegion[id] != ep {
			return
		}
		p.inQueue[id] = p.qEpoch
		l := c.Level(id)
		if len(p.qBuckets[l]) == 0 {
			p.qDirty = append(p.qDirty, l)
		}
		p.qBuckets[l] = append(p.qBuckets[l], id)
	}
	expand := func(from int) {
		for _, out := range c.Gates[from].Fanout {
			if c.Gates[out].Type == circuit.DFF {
				continue
			}
			push(out)
		}
	}
	expand(src)
	for l := 0; l < len(p.qBuckets); l++ {
		for _, g := range p.qBuckets[l] {
			newG := eval3Region(c.Gates[g].Type, c.Gates[g].Fanin, p.good)
			newF := f.Stuck
			if g != f.Net {
				newF = eval3Region(c.Gates[g].Type, c.Gates[g].Fanin, p.faulty)
			}
			if newG == p.good[g] && newF == p.faulty[g] {
				continue
			}
			p.good[g], p.faulty[g] = newG, newF
			expand(g)
		}
	}
}

// setPin writes a decision value (or X on unassign) at a scan pin and
// event-propagates the change.
func (p *podem) setPin(f Fault, pin int, val cube.Trit) {
	p.assignment[pin] = val
	src := p.c.ScanInputs()[pin]
	p.good[src] = val
	if src == f.Net {
		p.faulty[src] = f.Stuck
	} else {
		p.faulty[src] = val
	}
	p.propagate(f, src)
}

// buildRegion computes the fault's relevant subcircuit: forward cone
// from the fault net, then transitive fanin of every observable (or
// frontier gate) in that cone. regionTopo/regionPIs are rebuilt.
func (p *podem) buildRegion(f Fault) {
	c := p.c
	p.regionEpoch++
	ep := p.regionEpoch

	// Forward cone (combinational only).
	p.fwdList = p.fwdList[:0]
	p.fwdList = append(p.fwdList, f.Net)
	p.markFwd[f.Net] = ep
	for head := 0; head < len(p.fwdList); head++ {
		g := p.fwdList[head]
		for _, out := range c.Gates[g].Fanout {
			if c.Gates[out].Type == circuit.DFF {
				continue
			}
			if p.markFwd[out] != ep {
				p.markFwd[out] = ep
				p.fwdList = append(p.fwdList, out)
			}
		}
	}
	// Backward closure from cone members (the cone's side inputs matter
	// for propagation, and the fault net's fanin matters for
	// activation).
	p.bwdList = p.bwdList[:0]
	seed := func(id int) {
		if p.inRegion[id] != ep {
			p.inRegion[id] = ep
			p.bwdList = append(p.bwdList, id)
		}
	}
	for _, g := range p.fwdList {
		seed(g)
	}
	for head := 0; head < len(p.bwdList); head++ {
		g := p.bwdList[head]
		for _, in := range c.Gates[g].Fanin {
			seed(in)
		}
	}
	// Region topo order: filter the global topo order; collect region
	// scan inputs.
	p.regionTopo = p.regionTopo[:0]
	p.regionPIs = p.regionPIs[:0]
	for _, id := range p.bwdList {
		if p.scanIndex[id] >= 0 {
			p.regionPIs = append(p.regionPIs, id)
		}
	}
	for _, g := range c.Topo() {
		if p.inRegion[g] == ep {
			p.regionTopo = append(p.regionTopo, g)
		}
	}
}

// imply simulates both machines over the region given the current scan
// assignments. The faulty machine forces the stuck value on the fault
// net.
func (p *podem) imply(f Fault) {
	c := p.c
	ep := p.regionEpoch
	// Sources.
	for _, id := range p.bwdList {
		g := &c.Gates[id]
		var v cube.Trit
		switch {
		case g.Type == circuit.Const0:
			v = cube.Zero
		case g.Type == circuit.Const1:
			v = cube.One
		case p.scanIndex[id] >= 0:
			v = p.assignment[p.scanIndex[id]]
		default:
			continue
		}
		p.good[id] = v
		p.faulty[id] = v
	}
	if f.Net < len(p.good) && p.inRegion[f.Net] == ep {
		if p.scanIndex[f.Net] >= 0 || c.Gates[f.Net].Type == circuit.Const0 || c.Gates[f.Net].Type == circuit.Const1 {
			p.faulty[f.Net] = f.Stuck
		}
	}
	for _, g := range p.regionTopo {
		p.good[g] = eval3Region(c.Gates[g].Type, c.Gates[g].Fanin, p.good)
		if g == f.Net {
			p.faulty[g] = f.Stuck
		} else {
			p.faulty[g] = eval3Region(c.Gates[g].Type, c.Gates[g].Fanin, p.faulty)
		}
	}
}

// eval3Region mirrors logicsim's 3-valued evaluation on a raw value
// array (duplicated to avoid exporting simulator internals).
func eval3Region(t circuit.GateType, fanin []int, vals []cube.Trit) cube.Trit {
	switch t {
	case circuit.Buf:
		return vals[fanin[0]]
	case circuit.Not:
		return vals[fanin[0]].Neg()
	case circuit.And, circuit.Nand:
		out := cube.One
		for _, f := range fanin {
			switch vals[f] {
			case cube.Zero:
				out = cube.Zero
			case cube.X:
				if out == cube.One {
					out = cube.X
				}
			}
		}
		if t == circuit.Nand {
			return out.Neg()
		}
		return out
	case circuit.Or, circuit.Nor:
		out := cube.Zero
		for _, f := range fanin {
			switch vals[f] {
			case cube.One:
				out = cube.One
			case cube.X:
				if out == cube.Zero {
					out = cube.X
				}
			}
		}
		if t == circuit.Nor {
			return out.Neg()
		}
		return out
	case circuit.Xor, circuit.Xnor:
		out := cube.Zero
		for _, f := range fanin {
			v := vals[f]
			if v == cube.X {
				return cube.X
			}
			if v == cube.One {
				out = out.Neg()
			}
		}
		if t == circuit.Xnor {
			return out.Neg()
		}
		return out
	default:
		return cube.X
	}
}

// detected reports whether some observable region net currently shows a
// specified good/faulty difference.
func (p *podem) detected() bool {
	for _, g := range p.bwdList {
		if !p.observable[g] {
			continue
		}
		gv, fv := p.good[g], p.faulty[g]
		if gv != cube.X && fv != cube.X && gv != fv {
			return true
		}
	}
	return false
}

// dFrontierObjective returns an objective (net, value) that advances
// fault-effect propagation, or ok=false if the D-frontier is empty.
func (p *podem) dFrontierObjective() (int, cube.Trit, bool) {
	c := p.c
	for _, g := range p.regionTopo {
		gv, fv := p.good[g], p.faulty[g]
		// Composite output still unknown?
		if gv != cube.X && fv != cube.X {
			continue
		}
		// Needs a D/D' input.
		hasD := false
		for _, in := range c.Gates[g].Fanin {
			iv, ifv := p.good[in], p.faulty[in]
			if iv != cube.X && ifv != cube.X && iv != ifv {
				hasD = true
				break
			}
		}
		if !hasD {
			continue
		}
		// Objective: set an unknown side input to the gate's
		// non-controlling value. Only good-unknown inputs are
		// controllable by further PI decisions.
		for _, in := range c.Gates[g].Fanin {
			if p.good[in] == cube.X {
				return in, nonControlling(c.Gates[g].Type), true
			}
		}
	}
	return 0, cube.X, false
}

// nonControlling returns the value a side input must take for the fault
// effect to pass through a gate of the given type (arbitrary for XOR
// family, where either value propagates).
func nonControlling(t circuit.GateType) cube.Trit {
	switch t {
	case circuit.And, circuit.Nand:
		return cube.One
	case circuit.Or, circuit.Nor:
		return cube.Zero
	default:
		return cube.Zero
	}
}

// backtrace walks an objective (net, value) backward to an unassigned
// scan input in the region and returns the pin and trial value.
func (p *podem) backtrace(net int, val cube.Trit) (int, cube.Trit, bool) {
	c := p.c
	for steps := 0; steps <= len(c.Gates); steps++ {
		if pin := p.scanIndex[net]; pin >= 0 {
			if p.assignment[pin] != cube.X {
				return 0, cube.X, false // already decided; objective unreachable
			}
			return pin, val, true
		}
		g := &c.Gates[net]
		switch g.Type {
		case circuit.Const0, circuit.Const1, circuit.Input, circuit.DFF:
			return 0, cube.X, false
		case circuit.Buf:
			net = g.Fanin[0]
		case circuit.Not:
			net, val = g.Fanin[0], val.Neg()
		case circuit.Nand, circuit.Nor, circuit.Xnor:
			// Pick an X fanin; objective value inverts through the gate
			// (for the XOR family this is a heuristic, which is all
			// backtrace needs to be).
			in, ok := p.xFanin(g)
			if !ok {
				return 0, cube.X, false
			}
			net, val = in, val.Neg()
		default: // And, Or, Xor
			in, ok := p.xFanin(g)
			if !ok {
				return 0, cube.X, false
			}
			net = in
		}
	}
	return 0, cube.X, false
}

// xFanin returns a fanin with unknown good value, preferring the first.
func (p *podem) xFanin(g *circuit.Gate) (int, bool) {
	for _, in := range g.Fanin {
		if p.good[in] == cube.X {
			return in, true
		}
	}
	return 0, false
}

// decision is one trial assignment on the PODEM stack.
type decision struct {
	pin     int
	value   cube.Trit
	flipped bool // both values tried?
}

// Result statuses for one fault.
const (
	statusDetected = iota
	statusUntestable
	statusAborted
)

// generate runs PODEM for fault f. On success it returns the test cube
// (width = |scan inputs|) with unassigned pins left X.
func (p *podem) generate(f Fault, backtrackLimit int) (cube.Cube, int) {
	p.buildRegion(f)
	// No observable reachable => untestable (e.g. dangling logic).
	reachable := false
	for _, g := range p.fwdList {
		if p.observable[g] {
			reachable = true
			break
		}
	}
	if !reachable {
		return nil, statusUntestable
	}
	for i := range p.assignment {
		p.assignment[i] = cube.X
	}
	var stack []decision
	backtracks := 0

	p.imply(f)
	for {
		if p.detected() {
			p.relax(f, stack)
			out := cube.New(len(p.assignment))
			for i, v := range p.assignment {
				out[i] = v
			}
			return out, statusDetected
		}
		obj, objVal, ok := p.objective(f)
		var pin int
		var val cube.Trit
		if ok {
			pin, val, ok = p.backtrace(obj, objVal)
		}
		if !ok {
			// Dead end: backtrack. Unassignments and flips are plain
			// source-value changes, so they event-propagate too.
			flipped := false
			for len(stack) > 0 {
				top := &stack[len(stack)-1]
				if !top.flipped {
					top.flipped = true
					top.value = top.value.Neg()
					p.setPin(f, top.pin, top.value)
					flipped = true
					break
				}
				p.setPin(f, top.pin, cube.X)
				stack = stack[:len(stack)-1]
			}
			if !flipped {
				return nil, statusUntestable
			}
			backtracks++
			if backtracks > backtrackLimit {
				return nil, statusAborted
			}
			continue
		}
		stack = append(stack, decision{pin: pin, value: val})
		p.setPin(f, pin, val)
	}
}

// relax is the pattern-relaxation pass real ATPG flows run after a
// successful generation: walk the decisions newest-first, revert each
// to X, and keep the X whenever the fault stays detected. Only the
// assignments on the surviving activation/propagation path remain, so
// the emitted cubes carry the high X density that makes X-filling
// worthwhile (Table I).
func (p *podem) relax(f Fault, stack []decision) {
	for i := len(stack) - 1; i >= 0; i-- {
		pin := stack[i].pin
		old := p.assignment[pin]
		if old == cube.X {
			continue
		}
		p.setPin(f, pin, cube.X)
		if !p.detected() {
			p.setPin(f, pin, old)
		}
	}
}

// objective picks the next goal: activate the fault if not yet
// activated, otherwise advance the D-frontier.
func (p *podem) objective(f Fault) (int, cube.Trit, bool) {
	gv := p.good[f.Net]
	switch gv {
	case cube.X:
		return f.Net, f.Stuck.Neg(), true
	case f.Stuck:
		return 0, cube.X, false // activation impossible under current assignment
	}
	return p.dFrontierObjective()
}
