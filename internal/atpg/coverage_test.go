package atpg

import (
	"testing"

	"repro/internal/netgen"
)

func TestCoverageCurveMonotone(t *testing.T) {
	p, _ := netgen.ProfileByName("b03")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	set, stats, err := Generate(c, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	curve, err := CoverageCurve(c, set)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) == 0 {
		t.Fatal("empty curve")
	}
	prev := CoveragePoint{}
	for _, pt := range curve {
		if pt.Patterns <= prev.Patterns || pt.Detected < prev.Detected {
			t.Fatalf("curve not monotone: %+v after %+v", pt, prev)
		}
		if pt.Coverage < 0 || pt.Coverage > 1 {
			t.Fatalf("coverage out of range: %+v", pt)
		}
		prev = pt
	}
	last := curve[len(curve)-1]
	if last.Patterns != set.Len() {
		t.Fatalf("final point at %d patterns, want %d", last.Patterns, set.Len())
	}
	// The independent audit must account for at least the faults
	// Generate claims (it may find more: Generate drops conservatively
	// within its own flow).
	if last.Detected < stats.Detected {
		t.Fatalf("audit detected %d < Generate's %d", last.Detected, stats.Detected)
	}
	// The classic shape: the first batch detects the majority of the
	// finally-covered faults.
	if float64(curve[0].Detected) < 0.5*float64(last.Detected) {
		t.Logf("note: first batch covered %d/%d (unusually shallow start)",
			curve[0].Detected, last.Detected)
	}
}
