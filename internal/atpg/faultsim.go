package atpg

import (
	"repro/internal/circuit"
	"repro/internal/cube"
	"repro/internal/logicsim"
)

// FaultSim is a three-valued pattern-parallel stuck-at fault simulator.
// It simulates the good machine once per batch of up to 64 test cubes,
// then, per fault, resimulates only the fault's fanout cone against a
// copy-on-write overlay. A fault is detected by pattern p if some
// observable net (PO or DFF fanin) has specified, differing good and
// faulty values in p — i.e. detection is guaranteed no matter how the
// cubes' X bits are later filled.
type FaultSim struct {
	cc   *logicsim.Circuit3
	good *logicsim.DualRail

	// observable[id] marks POs and DFF fanin nets.
	observable []bool

	// Overlay state for cone resimulation, reused across faults via an
	// epoch counter.
	oneF, zeroF []uint64
	stamp       []int
	epoch       int

	// buckets[level] is a reusable level-indexed worklist; dirty lists
	// the levels touched by the current fault so clearing is O(cone).
	buckets [][]int
	dirty   []int
	inCone  []int // epoch-stamped membership
}

// NewFaultSim builds a simulator for the circuit.
func NewFaultSim(cc *logicsim.Circuit3) *FaultSim {
	c := cc.C
	n := len(c.Gates)
	fs := &FaultSim{
		cc:         cc,
		good:       logicsim.NewDualRail(cc),
		observable: make([]bool, n),
		oneF:       make([]uint64, n),
		zeroF:      make([]uint64, n),
		stamp:      make([]int, n),
		inCone:     make([]int, n),
	}
	for _, id := range c.ScanOutputs() {
		fs.observable[id] = true
	}
	fs.buckets = make([][]int, c.Depth()+1)
	return fs
}

// ApplyBatch simulates the good machine for up to 64 cubes. It must be
// called before Detects.
func (fs *FaultSim) ApplyBatch(cubes []cube.Cube) error {
	return fs.good.ApplyCubes(cubes)
}

// ApplyPackedRows simulates the good machine for the up-to-64 cubes
// starting at column base of the packed row planes — the repack-free
// ApplyBatch for callers sweeping a whole set.
func (fs *FaultSim) ApplyPackedRows(pr *cube.PackedRows, base int) error {
	return fs.good.ApplyPackedRows(pr, base)
}

// Good returns the good-machine dual-rail engine (read-only use).
func (fs *FaultSim) Good() *logicsim.DualRail { return fs.good }

func (fs *FaultSim) readOne(id int) uint64 {
	if fs.stamp[id] == fs.epoch {
		return fs.oneF[id]
	}
	return fs.good.One[id]
}

func (fs *FaultSim) readZero(id int) uint64 {
	if fs.stamp[id] == fs.epoch {
		return fs.zeroF[id]
	}
	return fs.good.Zero[id]
}

// Detects returns the set of batch patterns (as a bit mask) in which the
// fault is definitely detected, given the last ApplyBatch. The mask is
// relative to the batch's pattern indices.
func (fs *FaultSim) Detects(f Fault) uint64 {
	c := fs.cc.C
	fs.epoch++

	// Force the faulty value on the fault net.
	var fOne, fZero uint64
	if f.Stuck == cube.One {
		fOne, fZero = ^uint64(0), 0
	} else {
		fOne, fZero = 0, ^uint64(0)
	}
	fs.oneF[f.Net], fs.zeroF[f.Net] = fOne, fZero
	fs.stamp[f.Net] = fs.epoch

	// diff: patterns where good and faulty are specified and differ.
	diffAt := func(id int) uint64 {
		return (fs.good.One[id] & fs.readZero(id)) | (fs.good.Zero[id] & fs.readOne(id))
	}

	detected := uint64(0)
	if fs.observable[f.Net] {
		detected |= diffAt(f.Net)
	}

	// Level-bucketed cone propagation: every combinational gate sits at
	// a strictly higher level than its fanins, so sweeping buckets in
	// increasing level evaluates each cone gate exactly once, after all
	// its (possibly faulty) fanins.
	for _, l := range fs.dirty {
		fs.buckets[l] = fs.buckets[l][:0]
	}
	fs.dirty = fs.dirty[:0]
	push := func(id int) {
		if fs.inCone[id] != fs.epoch {
			fs.inCone[id] = fs.epoch
			l := c.Level(id)
			if len(fs.buckets[l]) == 0 {
				fs.dirty = append(fs.dirty, l)
			}
			fs.buckets[l] = append(fs.buckets[l], id)
		}
	}
	expand := func(from int) {
		for _, out := range c.Gates[from].Fanout {
			if c.Gates[out].Type == circuit.DFF {
				// The DFF's fanin net is the observable; the flop itself
				// is a sequential boundary.
				continue
			}
			push(out)
		}
	}
	expand(f.Net)
	for l := 0; l < len(fs.buckets); l++ {
		for _, g := range fs.buckets[l] {
			one, zero := evalOverlay(fs, c.Gates[g].Type, c.Gates[g].Fanin)
			if one == fs.good.One[g] && zero == fs.good.Zero[g] {
				continue // fault effect died here; don't expand
			}
			fs.oneF[g], fs.zeroF[g] = one, zero
			fs.stamp[g] = fs.epoch
			if fs.observable[g] {
				detected |= diffAt(g)
			}
			expand(g)
		}
	}
	return detected
}

// evalOverlay evaluates one gate dual-rail, reading fanins through the
// copy-on-write overlay. The switch mirrors logicsim.EvalDualRail.
func evalOverlay(fs *FaultSim, t circuit.GateType, fanin []int) (uint64, uint64) {
	switch t {
	case circuit.Buf:
		return fs.readOne(fanin[0]), fs.readZero(fanin[0])
	case circuit.Not:
		return fs.readZero(fanin[0]), fs.readOne(fanin[0])
	case circuit.And, circuit.Nand:
		o := ^uint64(0)
		z := uint64(0)
		for _, f := range fanin {
			o &= fs.readOne(f)
			z |= fs.readZero(f)
		}
		if t == circuit.Nand {
			return z, o
		}
		return o, z
	case circuit.Or, circuit.Nor:
		o := uint64(0)
		z := ^uint64(0)
		for _, f := range fanin {
			o |= fs.readOne(f)
			z &= fs.readZero(f)
		}
		if t == circuit.Nor {
			return z, o
		}
		return o, z
	case circuit.Xor, circuit.Xnor:
		o := uint64(0)
		z := ^uint64(0)
		for _, f := range fanin {
			no := (o & fs.readZero(f)) | (z & fs.readOne(f))
			nz := (z & fs.readZero(f)) | (o & fs.readOne(f))
			o, z = no, nz
		}
		if t == circuit.Xnor {
			return z, o
		}
		return o, z
	default:
		// Sources cannot appear in a fanout cone.
		return 0, 0
	}
}

// DetectedBy reports whether the single cube detects the fault — a
// convenience wrapper (one-pattern batch) used by tests and by PODEM
// result verification.
func (fs *FaultSim) DetectedBy(t cube.Cube, f Fault) (bool, error) {
	if err := fs.ApplyBatch([]cube.Cube{t}); err != nil {
		return false, err
	}
	return fs.Detects(f)&1 != 0, nil
}
