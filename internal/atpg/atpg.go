package atpg

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cube"
	"repro/internal/logicsim"
)

// Options tunes a Generate run.
type Options struct {
	// BacktrackLimit bounds PODEM backtracks per fault (default 120);
	// faults exceeding it are counted as aborted.
	BacktrackLimit int
	// MaxFaults, when positive, samples the collapsed fault list down to
	// this size (seeded by Seed). Large-circuit experiment runs use this
	// to bound effort; cube geometry is unaffected (DESIGN.md).
	MaxFaults int
	// MaxPatterns, when positive, stops generation after this many
	// cubes.
	MaxPatterns int
	// NoCompact disables greedy static compaction. By default each new
	// PODEM cube is merged into the first compatible pattern of the
	// current batch (what commercial ATPG does): pattern counts shrink
	// and the emitted set gets the care-density skew — a few dense
	// patterns, a long X-rich tail — that test-vector ordering
	// techniques exploit.
	NoCompact bool
	// Seed drives fault sampling.
	Seed int64
	// Shard/NumShards restrict the run to one contiguous partition of
	// the collapsed (and possibly sampled) fault list: shard k of K
	// targets faults [k*n/K, (k+1)*n/K). Partitioning happens after
	// collapsing and sampling, so the union of all K shards targets
	// exactly the fault list a single run would. Fault dropping and
	// compaction stay within the shard. NumShards <= 1 means no
	// sharding; a shard whose partition yields no patterns returns an
	// empty set with a nil error (the caller judges the merged set).
	Shard, NumShards int
}

func (o Options) withDefaults() Options {
	if o.BacktrackLimit <= 0 {
		o.BacktrackLimit = 120
	}
	return o
}

// Stats summarizes a Generate run.
type Stats struct {
	// TotalFaults is the collapsed (and possibly sampled) target count.
	TotalFaults int
	// Detected, Untestable and Aborted partition the targets.
	Detected, Untestable, Aborted int
	// Patterns is the emitted cube count.
	Patterns int
	// DroppedBySim counts targets detected by fault simulation of
	// another target's cube rather than by their own PODEM run.
	DroppedBySim int
	// Merged counts PODEM cubes absorbed into existing patterns by
	// static compaction.
	Merged int
}

// Coverage returns detected / (detected + aborted) — untestable faults
// are excluded, as is conventional.
func (s Stats) Coverage() float64 {
	den := s.Detected + s.Aborted
	if den == 0 {
		return 0
	}
	return float64(s.Detected) / float64(den)
}

// Generate runs the full ATPG flow on the circuit: collapse the stem
// fault list (optionally sampling it), then for each remaining
// undetected fault run PODEM and fault-simulate the resulting cube over
// the undetected fault list in 64-pattern batches (fault dropping). The
// returned set's order is the "tool ordering" of Table II.
func Generate(c *circuit.Circuit, opts Options) (*cube.Set, Stats, error) {
	opts = opts.withDefaults()
	cc := logicsim.Compile(c)
	faults := Collapse(c, AllFaults(c))
	faults = Sample(faults, opts.MaxFaults, opts.Seed)
	if opts.NumShards > 1 {
		if opts.Shard < 0 || opts.Shard >= opts.NumShards {
			return nil, Stats{}, fmt.Errorf("atpg: shard %d out of range [0,%d)", opts.Shard, opts.NumShards)
		}
		lo := opts.Shard * len(faults) / opts.NumShards
		hi := (opts.Shard + 1) * len(faults) / opts.NumShards
		faults = faults[lo:hi]
	}

	stats := Stats{TotalFaults: len(faults)}
	set := cube.NewSet(c.NumInputs())
	eng := newPodem(c)
	fs := NewFaultSim(cc)

	detected := make([]bool, len(faults))
	var pending []cube.Cube // cubes not yet fault-simulated

	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		if err := fs.ApplyBatch(pending); err != nil {
			return err
		}
		for fi := range faults {
			if detected[fi] {
				continue
			}
			if fs.Detects(faults[fi]) != 0 {
				detected[fi] = true
				stats.Detected++
				stats.DroppedBySim++
			}
		}
		pending = pending[:0]
		return nil
	}

	// tryMerge implements greedy static compaction within the pending
	// batch: absorb the cube into the first compatible pattern (the
	// merged pattern detects every fault either constituent detected,
	// since detection under X is monotone in specification).
	tryMerge := func(t cube.Cube) bool {
		if opts.NoCompact {
			return false
		}
		for _, p := range pending {
			if p.Compatible(t) {
				for i, tr := range t {
					if tr != cube.X {
						p[i] = tr
					}
				}
				return true
			}
		}
		return false
	}

	for fi := range faults {
		if detected[fi] {
			continue
		}
		if opts.MaxPatterns > 0 && set.Len() >= opts.MaxPatterns {
			break
		}
		t, status := eng.generate(faults[fi], opts.BacktrackLimit)
		switch status {
		case statusUntestable:
			stats.Untestable++
			continue
		case statusAborted:
			stats.Aborted++
			continue
		}
		detected[fi] = true
		stats.Detected++
		if tryMerge(t) {
			stats.Merged++
		} else {
			set.Append(t)
			pending = append(pending, t)
		}
		if len(pending) == 64 {
			if err := flush(); err != nil {
				return nil, stats, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, stats, err
	}
	stats.Patterns = set.Len()
	if set.Len() == 0 {
		// A sharded run may legitimately draw a partition of all-
		// untestable or all-dropped faults; the caller checks the merged
		// set instead.
		if opts.NumShards > 1 {
			return set, stats, nil
		}
		return nil, stats, fmt.Errorf("atpg: no testable faults in %q", c.Name)
	}
	return set, stats, nil
}

// VerifyDetection fault-simulates every (cube, fault) pair produced by a
// Generate-style run and reports whether the cube detects the fault; it
// is the independent cross-check used by tests and examples.
func VerifyDetection(c *circuit.Circuit, t cube.Cube, f Fault) (bool, error) {
	fs := NewFaultSim(logicsim.Compile(c))
	return fs.DetectedBy(t, f)
}
