package atpg

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/cube"
	"repro/internal/logicsim"
	"repro/internal/netgen"
)

const tinyNetlist = `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = AND(a, b)
n2 = OR(n1, c)
y = NOT(n2)
`

const seqNetlist = `
INPUT(a)
INPUT(b)
OUTPUT(y)
q0 = DFF(n2)
n1 = NAND(a, q0)
n2 = XOR(b, n1)
y = NOR(n1, n2)
`

func parse(t testing.TB, src string) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBench(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAllFaultsCount(t *testing.T) {
	c := parse(t, tinyNetlist)
	faults := AllFaults(c)
	// 6 nets (a,b,c,n1,n2,y) x 2 polarities.
	if len(faults) != 12 {
		t.Fatalf("%d faults, want 12", len(faults))
	}
}

func TestCollapseBufNotChains(t *testing.T) {
	src := `
INPUT(a)
b1 = BUFF(a)
n1 = NOT(b1)
OUTPUT(n1)
`
	c := parse(t, src)
	faults := Collapse(c, AllFaults(c))
	// b1's faults fold onto a; n1's fold onto a with inverted polarity.
	// Only a/sa0 and a/sa1 remain.
	if len(faults) != 2 {
		t.Fatalf("collapsed = %v", faults)
	}
	aID, _ := c.GateByName("a")
	for _, f := range faults {
		if f.Net != aID {
			t.Fatalf("fault %v not folded onto input", f)
		}
	}
}

func TestFaultString(t *testing.T) {
	if (Fault{Net: 3, Stuck: cube.One}).String() != "3/sa1" {
		t.Fatal("Fault.String")
	}
	if (Fault{Net: 0, Stuck: cube.Zero}).String() != "0/sa0" {
		t.Fatal("Fault.String sa0")
	}
}

func TestSample(t *testing.T) {
	faults := make([]Fault, 100)
	for i := range faults {
		faults[i] = Fault{Net: i, Stuck: cube.Zero}
	}
	s := Sample(faults, 10, 1)
	if len(s) != 10 {
		t.Fatalf("sampled %d", len(s))
	}
	s2 := Sample(faults, 10, 1)
	for i := range s {
		if s[i] != s2[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	if got := Sample(faults, 0, 1); len(got) != 100 {
		t.Fatal("max<=0 must be identity")
	}
	if got := Sample(faults, 200, 1); len(got) != 100 {
		t.Fatal("max>len must be identity")
	}
}

func TestFaultSimKnownDetections(t *testing.T) {
	c := parse(t, tinyNetlist)
	fs := NewFaultSim(logicsim.Compile(c))
	yID, _ := c.GateByName("y")
	n1ID, _ := c.GateByName("n1")

	// Pattern 110: n1=1, n2=1, y=0.
	// y/sa1 flips the observed output -> detected.
	det, err := fs.DetectedBy(cube.MustParse("110"), Fault{Net: yID, Stuck: cube.One})
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("y/sa1 not detected by 110")
	}
	// n1/sa0 under 110: good n1=1, faulty 0, then n2 = OR(0,0)=0, y=1 vs
	// good y=0 -> detected.
	det, err = fs.DetectedBy(cube.MustParse("110"), Fault{Net: n1ID, Stuck: cube.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("n1/sa0 not detected by 110")
	}
	// n1/sa0 under 100: good n1=0 -> fault not excited.
	det, err = fs.DetectedBy(cube.MustParse("100"), Fault{Net: n1ID, Stuck: cube.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("n1/sa0 claimed detected by non-exciting pattern")
	}
}

func TestFaultSimXConservative(t *testing.T) {
	// With c = X, the fault effect of n1/sa0 may be masked (c=1 blocks
	// the OR); detection must NOT be claimed.
	c := parse(t, tinyNetlist)
	fs := NewFaultSim(logicsim.Compile(c))
	n1ID, _ := c.GateByName("n1")
	det, err := fs.DetectedBy(cube.MustParse("11X"), Fault{Net: n1ID, Stuck: cube.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("X-masked fault claimed detected")
	}
	// With c = 0 the path is clear.
	det, err = fs.DetectedBy(cube.MustParse("110"), Fault{Net: n1ID, Stuck: cube.Zero})
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("clear path not detected")
	}
}

func TestPodemTinyCircuit(t *testing.T) {
	c := parse(t, tinyNetlist)
	eng := newPodem(c)
	fs := NewFaultSim(logicsim.Compile(c))
	for _, f := range Collapse(c, AllFaults(c)) {
		tc, status := eng.generate(f, 100)
		if status != statusDetected {
			t.Fatalf("fault %v not detected (status %d)", f, status)
		}
		det, err := fs.DetectedBy(tc, f)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Fatalf("PODEM cube %v does not detect %v per fault sim", tc, f)
		}
	}
}

func TestPodemSequentialFullScan(t *testing.T) {
	c := parse(t, seqNetlist)
	eng := newPodem(c)
	fs := NewFaultSim(logicsim.Compile(c))
	for _, f := range Collapse(c, AllFaults(c)) {
		tc, status := eng.generate(f, 100)
		if status == statusAborted {
			t.Fatalf("fault %v aborted on a 4-gate circuit", f)
		}
		if status == statusUntestable {
			continue
		}
		det, err := fs.DetectedBy(tc, f)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Fatalf("cube %v does not detect %v", tc, f)
		}
	}
}

func TestPodemUntestableFault(t *testing.T) {
	// Redundant logic: y = OR(a, NOT(a)) is constant 1; the OR output
	// s-a-1 is untestable.
	src := `
INPUT(a)
n = NOT(a)
y = OR(a, n)
OUTPUT(y)
`
	c := parse(t, src)
	eng := newPodem(c)
	yID, _ := c.GateByName("y")
	if _, status := eng.generate(Fault{Net: yID, Stuck: cube.One}, 100); status != statusUntestable {
		t.Fatalf("constant-1 net s-a-1 not proven untestable (status %d)", status)
	}
	// And s-a-0 on the same net is trivially testable.
	if _, status := eng.generate(Fault{Net: yID, Stuck: cube.Zero}, 100); status != statusDetected {
		t.Fatalf("s-a-0 on constant-1 net should be detected (status %d)", status)
	}
}

func TestGenerateTiny(t *testing.T) {
	c := parse(t, tinyNetlist)
	set, stats, err := Generate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Width != 3 {
		t.Fatalf("width = %d", set.Width)
	}
	if stats.Detected == 0 || stats.Coverage() < 1.0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Patterns != set.Len() {
		t.Fatalf("pattern count mismatch: %d vs %d", stats.Patterns, set.Len())
	}
}

func TestGenerateProfileCircuit(t *testing.T) {
	p, _ := netgen.ProfileByName("b03")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	set, stats, err := Generate(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if set.Width != p.Inputs() {
		t.Fatalf("cube width %d, want %d", set.Width, p.Inputs())
	}
	if stats.Coverage() < 0.85 {
		t.Fatalf("coverage %.2f too low; stats %+v", stats.Coverage(), stats)
	}
	if set.XPercent() < 10 {
		t.Fatalf("X%% = %.1f; cubes are suspiciously dense", set.XPercent())
	}
	t.Logf("b03: %d patterns, %.1f%% X, coverage %.1f%%",
		set.Len(), set.XPercent(), 100*stats.Coverage())
}

func TestGenerateMaxPatterns(t *testing.T) {
	p, _ := netgen.ProfileByName("b03")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := Generate(c, Options{MaxPatterns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() > 5 {
		t.Fatalf("MaxPatterns ignored: %d", set.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := netgen.ProfileByName("b01")
	c, err := netgen.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := Generate(c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Generate(c, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatal("ATPG not deterministic")
	}
}

// TestPropertyPodemCubesVerify: every PODEM-generated cube detects its
// target fault according to the independent dual-rail fault simulator,
// on randomly generated circuits.
func TestPropertyPodemCubesVerify(t *testing.T) {
	f := func(seed int64) bool {
		p := netgen.Profile{Name: "prop", PIs: 3, FFs: 4, Gates: 40, Seed: seed%1000 + 1}
		c, err := netgen.Generate(p)
		if err != nil {
			return false
		}
		eng := newPodem(c)
		fs := NewFaultSim(logicsim.Compile(c))
		faults := Collapse(c, AllFaults(c))
		r := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 10 && len(faults) > 0; trial++ {
			fl := faults[r.Intn(len(faults))]
			tc, status := eng.generate(fl, 200)
			if status != statusDetected {
				continue
			}
			det, err := fs.DetectedBy(tc, fl)
			if err != nil || !det {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFaultSimMatchesScalar: dual-rail cone-resim detection
// agrees with brute-force full-circuit two-valued simulation on fully
// specified patterns.
func TestPropertyFaultSimMatchesScalar(t *testing.T) {
	f := func(seed int64) bool {
		p := netgen.Profile{Name: "prop", PIs: 4, FFs: 3, Gates: 30, Seed: seed%997 + 1}
		c, err := netgen.Generate(p)
		if err != nil {
			return false
		}
		cc := logicsim.Compile(c)
		fs := NewFaultSim(cc)
		sim := logicsim.NewSimulator(cc)
		r := rand.New(rand.NewSource(seed))
		width := c.NumInputs()
		pat := make(cube.Cube, width)
		for i := range pat {
			if r.Intn(2) == 0 {
				pat[i] = cube.Zero
			} else {
				pat[i] = cube.One
			}
		}
		faults := Collapse(c, AllFaults(c))
		for trial := 0; trial < 8 && len(faults) > 0; trial++ {
			fl := faults[r.Intn(len(faults))]
			got, err := fs.DetectedBy(pat, fl)
			if err != nil {
				return false
			}
			want, err := scalarFaultDetect(c, sim, pat, fl)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// scalarFaultDetect is an intentionally naive oracle: simulate the good
// circuit, then simulate a faulty copy gate-by-gate with the stuck net
// forced, and compare observables.
func scalarFaultDetect(c *circuit.Circuit, sim *logicsim.Simulator, pat cube.Cube, f Fault) (bool, error) {
	if err := sim.Apply(pat); err != nil {
		return false, err
	}
	good := make([]cube.Trit, c.NumGates())
	for id := range good {
		good[id] = sim.Value(id)
	}
	// Faulty values: recompute every net in topo order with the forced
	// stuck value.
	faulty := make([]cube.Trit, c.NumGates())
	copy(faulty, good)
	faulty[f.Net] = f.Stuck
	// Sources keep their values (except the fault net). Recompute all
	// combinational gates in topo order against the faulty array.
	for _, g := range c.Topo() {
		if g == f.Net {
			continue
		}
		faulty[g] = evalTritOracle(c, g, faulty)
	}
	for _, ob := range c.ScanOutputs() {
		gv, fv := good[ob], faulty[ob]
		if gv != cube.X && fv != cube.X && gv != fv {
			return true, nil
		}
	}
	return false, nil
}

func evalTritOracle(c *circuit.Circuit, g int, vals []cube.Trit) cube.Trit {
	return eval3Region(c.Gates[g].Type, c.Gates[g].Fanin, vals)
}

func BenchmarkATPGGenerateB04(b *testing.B) {
	p, _ := netgen.ProfileByName("b04")
	c, err := netgen.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(c, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
